//! A minimal Rust lexer: just enough structure for contract scanning.
//!
//! The analyzer's rules are lexical (identifier sequences like
//! `Instant :: now`), but a plain substring grep would fire on doc
//! comments, string literals, and `#[cfg(test)]` code. This lexer
//! splits a source file into tokens with line numbers, keeping
//! comments as trivia so the rule engine can
//!
//! * match code patterns against non-comment tokens only,
//! * inspect comment text for `// SAFETY:` audits and
//!   `// analyze::allow(...)` waivers.
//!
//! It understands line comments, nested block comments, string /
//! raw-string / byte-string / char literals, lifetimes (so `'a` is not
//! mistaken for an unterminated char literal), raw identifiers, and
//! numeric literals. It does not build an AST: items, expressions and
//! types all stay flat token runs, which is all the rules need.

/// The coarse classification the rules match against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`Instant`, `unsafe`, `fn`, ...).
    Ident,
    /// Punctuation. Multi-character operators are not glued together
    /// except `::`, which the rules match constantly.
    Punct,
    /// String / char / byte / numeric literal (contents opaque).
    Literal,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// `// ...` comment, including doc comments (`///`, `//!`).
    LineComment,
    /// `/* ... */` comment, including doc block comments.
    BlockComment,
}

/// One token with its source text and 1-based starting line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text (for comments: without the delimiters).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Tok {
    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// True for both comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a flat token stream, comments included.
///
/// The lexer is total: malformed input (say, an unterminated string)
/// never panics, it simply consumes to end-of-file as a literal. That
/// keeps the analyzer usable on fixture snippets and mid-edit files.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    while i < n {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::LineComment,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 0usize;
            while i < n {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::BlockComment,
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Raw strings / byte strings / raw identifiers: r" r#" br" b" b'.
        if c == 'r' || c == 'b' {
            if let Some((tok, next, lines)) = lex_prefixed_literal(&chars, i, line) {
                toks.push(tok);
                i = next;
                line += lines;
                continue;
            }
        }
        // Plain identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    i += 1;
                    break;
                }
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Literal,
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // `'\x'` escapes are always char literals.
            if i + 1 < n && chars[i + 1] == '\\' {
                let start = i;
                i += 2; // consume ' and backslash
                if i < n {
                    i += 1; // escaped char
                }
                // Consume up to the closing quote (handles \u{..}).
                while i < n && chars[i] != '\'' {
                    i += 1;
                }
                if i < n {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: chars[start..i].iter().collect(),
                    line,
                });
                continue;
            }
            if i + 1 < n && is_ident_start(chars[i + 1]) {
                // Scan the identifier run after the quote.
                let mut j = i + 1;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                if j < n && chars[j] == '\'' {
                    // 'a' — char literal.
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text: chars[i..=j].iter().collect(),
                        line,
                    });
                    i = j + 1;
                } else {
                    // 'a / 'static — lifetime.
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: chars[i..j].iter().collect(),
                        line,
                    });
                    i = j;
                }
                continue;
            }
            // `'('` style single-char literal.
            let start = i;
            i += 1;
            if i < n {
                i += 1;
            }
            if i < n && chars[i] == '\'' {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Literal,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < n && (is_ident_continue(chars[i])) {
                i += 1;
            }
            // Fractional part: only when a digit follows the dot, so
            // ranges (`0..n`) and method calls stay separate tokens.
            if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
            }
            // Exponent sign (`1e-3`): the `e` was consumed above, a
            // trailing +/- digit run may remain.
            if i < n
                && (chars[i] == '+' || chars[i] == '-')
                && chars[i - 1].is_ascii_alphabetic()
                && (chars[i - 1] == 'e' || chars[i - 1] == 'E')
                && i + 1 < n
                && chars[i + 1].is_ascii_digit()
            {
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Literal,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // `::` is glued; every other punct is one char.
        if c == ':' && i + 1 < n && chars[i + 1] == ':' {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: "::".to_string(),
                line,
            });
            i += 2;
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

/// Tries to lex a literal with an `r`/`b`/`br` prefix starting at `i`.
///
/// Returns `(token, next_index, newline_count)` on success; `None`
/// means the prefix was an ordinary identifier and the caller should
/// lex it as such. Raw identifiers (`r#match`) come back as `Ident`.
fn lex_prefixed_literal(chars: &[char], i: usize, line: u32) -> Option<(Tok, usize, u32)> {
    let n = chars.len();
    let mut j = i;
    // Optional b, then optional r.
    let mut saw_r = false;
    if chars[j] == 'b' {
        j += 1;
        if j < n && chars[j] == 'r' {
            saw_r = true;
            j += 1;
        }
    } else if chars[j] == 'r' {
        saw_r = true;
        j += 1;
    }
    if saw_r {
        // Count hashes.
        let mut hashes = 0usize;
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j < n && chars[j] == '"' {
            // Raw (byte) string: scan to `"` followed by `hashes` #s.
            j += 1;
            let mut lines = 0u32;
            while j < n {
                if chars[j] == '"' {
                    let mut k = 0usize;
                    while k < hashes && j + 1 + k < n && chars[j + 1 + k] == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        j += 1 + hashes;
                        let tok = Tok {
                            kind: TokKind::Literal,
                            text: chars[i..j].iter().collect(),
                            line,
                        };
                        return Some((tok, j, lines));
                    }
                }
                if chars[j] == '\n' {
                    lines += 1;
                }
                j += 1;
            }
            // Unterminated: consume the rest as a literal.
            let tok = Tok {
                kind: TokKind::Literal,
                text: chars[i..n].iter().collect(),
                line,
            };
            return Some((tok, n, lines));
        }
        if hashes == 1 && j < n && is_ident_start(chars[j]) && chars[i] == 'r' {
            // Raw identifier `r#ident`.
            let start = j;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            let tok = Tok {
                kind: TokKind::Ident,
                text: chars[start..j].iter().collect(),
                line,
            };
            return Some((tok, j, 0));
        }
        return None;
    }
    // b"..." / b'.'
    if j < n && chars[j] == '"' {
        j += 1;
        let mut lines = 0u32;
        while j < n {
            if chars[j] == '\\' && j + 1 < n {
                j += 2;
                continue;
            }
            if chars[j] == '"' {
                j += 1;
                break;
            }
            if chars[j] == '\n' {
                lines += 1;
            }
            j += 1;
        }
        let tok = Tok {
            kind: TokKind::Literal,
            text: chars[i..j].iter().collect(),
            line,
        };
        return Some((tok, j, lines));
    }
    if j < n && chars[j] == '\'' {
        // Byte char literal b'x' / b'\n'.
        j += 1;
        if j < n && chars[j] == '\\' {
            j += 2;
        } else if j < n {
            j += 1;
        }
        while j < n && chars[j] != '\'' {
            j += 1;
        }
        if j < n {
            j += 1;
        }
        let tok = Tok {
            kind: TokKind::Literal,
            text: chars[i..j].iter().collect(),
            line,
        };
        return Some((tok, j, 0));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_are_trivia_not_code() {
        let toks = kinds("let x = 1; // Instant::now() in prose\n/* HashMap */ y");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "y"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::LineComment && t.contains("Instant::now")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::BlockComment && t.contains("HashMap")));
    }

    #[test]
    fn strings_swallow_code_like_text() {
        let toks = kinds(r#"let s = "Instant::now() and HashMap"; t"#);
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "t"]);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds("r#\"SystemTime \"quoted\"\"# r#match b\"unsafe\"");
        assert_eq!(toks[0].0, TokKind::Literal);
        assert!(toks[0].1.contains("SystemTime"));
        assert_eq!(toks[1], (TokKind::Ident, "match".to_string()));
        assert_eq!(toks[2].0, TokKind::Literal);
    }

    #[test]
    fn lifetimes_do_not_eat_following_code() {
        let toks = kinds("fn f<'a>(x: &'a str) { 'b': loop {} }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        // The code after the lifetimes still lexes as idents.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "str"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "loop"));
    }

    #[test]
    fn char_literals_including_quote_escape() {
        let toks = kinds(r"let c = 'x'; let q = '\''; let nl = '\n'; done");
        let lits: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Literal)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lits, ["'x'", r"'\''", r"'\n'"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "done"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1], (TokKind::Ident, "code".to_string()));
    }

    #[test]
    fn line_numbers_advance_across_multiline_tokens() {
        let toks = lex("a\n\"two\nline\"\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // string starts on line 2
        assert_eq!(toks[2].line, 4); // b after the 2-line string
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = kinds("Instant::now()");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "Instant".to_string()),
                (TokKind::Punct, "::".to_string()),
                (TokKind::Ident, "now".to_string()),
                (TokKind::Punct, "(".to_string()),
                (TokKind::Punct, ")".to_string()),
            ]
        );
    }

    #[test]
    fn numeric_literals_do_not_merge_with_ranges() {
        let toks = kinds("for i in 0..n { let x = 1.5e-3f64; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "1.5e-3f64"));
        // The range dots survive as punct.
        let dots = toks
            .iter()
            .filter(|(k, t)| *k == TokKind::Punct && t == ".")
            .count();
        assert_eq!(dots, 2);
    }
}
