//! `analyze` — run the conformance rules over a workspace.
//!
//! ```text
//! analyze [ROOT] [--json PATH] [--quiet]
//! ```
//!
//! * `ROOT` — workspace root (default: current directory).
//! * `--json PATH` — additionally write the deterministic JSON report.
//! * `--quiet` — suppress the text report; only the result line prints.
//!
//! Exit codes (same contract as `experiments`): `0` clean, `1` one or
//! more unwaived findings, `2` bad arguments or unreadable workspace.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    quiet: bool,
}

const USAGE: &str = "usage: analyze [ROOT] [--json PATH] [--quiet]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut quiet = false;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                let Some(p) = it.next() else {
                    return Err("--json requires a path".to_string());
                };
                json = Some(PathBuf::from(p));
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            positional => {
                if root.is_some() {
                    return Err(format!("unexpected extra argument `{positional}`\n{USAGE}"));
                }
                root = Some(PathBuf::from(positional));
            }
        }
    }
    Ok(Args {
        root: root.unwrap_or_else(|| PathBuf::from(".")),
        json,
        quiet,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let report = match eqimpact_analyze::analyze(&args.root) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("analyze: {msg}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.render_json()) {
            eprintln!("analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if args.quiet {
        println!(
            "analyze: {} finding(s), {} waiver(s)",
            report.active_count(),
            report.waivers.len()
        );
    } else {
        print!("{}", report.render_text());
    }

    if report.active_count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
