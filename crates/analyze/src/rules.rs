//! The rule catalog (R1–R7) and per-file token matchers.
//!
//! Each rule has a stable id, a human name, and a fix hint; the
//! catalog order is fixed so reports are byte-identical across runs.
//! File scoping is by workspace-relative path (forward slashes): the
//! deterministic planes, the wall-clock modules, and the sanctioned
//! kernel/pool homes are named here, in one place, as constants.

use crate::report::Finding;
use crate::scan::FileScan;

/// One catalog entry.
pub struct Rule {
    /// Stable id (`R1` ... `R7`, plus `R0` for waiver hygiene).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line description of the contract.
    pub summary: &'static str,
    /// Generic fix hint rendered alongside findings.
    pub hint: &'static str,
}

/// Fixed-order rule catalog. `R0` covers the waiver mechanism itself:
/// malformed, reason-less, unknown-rule, or stale waivers are findings
/// and cannot themselves be waived.
pub const CATALOG: [Rule; 8] = [
    Rule {
        id: "R0",
        name: "waiver-hygiene",
        summary: "waivers must name a known rule, carry a reason, and match a finding",
        hint: "use `// analyze::allow(R<n>): <reason>` on or directly above the waived line",
    },
    Rule {
        id: "R1",
        name: "clock-hygiene",
        summary: "Instant::now()/SystemTime only inside telemetry's wall-clock modules",
        hint: "route wall-clock reads through eqimpact-telemetry (progress/instruments)",
    },
    Rule {
        id: "R2",
        name: "order-hygiene",
        summary: "no HashMap/HashSet in the deterministic planes (records, trace, certify, stats::json)",
        hint: "use BTreeMap/BTreeSet or index vectors so iteration order is reproducible",
    },
    Rule {
        id: "R3",
        name: "thread-hygiene",
        summary: "thread spawns and parallelism probes only in core::pool",
        hint: "go through ThreadBudget/WorkerPool (core::pool) instead of spawning directly",
    },
    Rule {
        id: "R4",
        name: "unsafe-audit",
        summary: "every unsafe block carries a // SAFETY: comment; unsafe-free crates forbid unsafe",
        hint: "document the invariant in a // SAFETY: comment, or add #![forbid(unsafe_code)]",
    },
    Rule {
        id: "R5",
        name: "panic-contract",
        summary: "no unwrap/expect/panic! in CLI and artifact-I/O modules outside #[cfg(test)]",
        hint: "thread the failure through the Result-based CLI error path",
    },
    Rule {
        id: "R6",
        name: "float-fold",
        summary: "no reassociating float folds in linalg/ml hot paths outside the documented kernels",
        hint: "route the reduction through linalg::kernels (dot_seq/sum_seq) or a documented sequential loop",
    },
    Rule {
        id: "R7",
        name: "dependency-hygiene",
        summary: "Cargo.toml dependencies are path/workspace entries only — no registry or git deps",
        hint: "vendor an offline shim under shims/ and depend on it by path",
    },
];

/// Looks up a catalog entry by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    CATALOG.iter().find(|r| r.id == id)
}

// ---------------------------------------------------------------------------
// Scoping: which files each rule applies to.
// ---------------------------------------------------------------------------

/// Telemetry's wall-clock modules — the only files allowed to read the
/// host clock (R1). `core::pool` holds a single waived read for its
/// queue-latency histogram.
pub const WALL_CLOCK_MODULES: [&str; 2] = [
    "crates/telemetry/src/instruments.rs",
    "crates/telemetry/src/progress.rs",
];

/// The deterministic planes (R2): whole crates whose iteration order
/// feeds records, EQTRACE1 bytes, certificates, or telemetry counters,
/// plus the JSON emitter.
pub const DETERMINISTIC_PLANES: [&str; 7] = [
    "crates/core/src/",
    "crates/trace/src/",
    "crates/certify/src/",
    "crates/lab/src/",
    "crates/credit/src/",
    "crates/hiring/src/",
    "crates/telemetry/src/",
];

/// The JSON emitter file — deterministic plane membership for a single
/// file of `eqimpact-stats`.
pub const DETERMINISTIC_FILES: [&str; 1] = ["crates/stats/src/json.rs"];

/// The sanctioned thread homes (R3): the worker pool itself and the
/// progress heartbeat daemon (telemetry cannot depend on core, so its
/// one background thread lives there by design).
pub const THREAD_HOMES: [&str; 2] = [
    "crates/core/src/pool.rs",
    "crates/telemetry/src/progress.rs",
];

/// CLI / artifact-I/O modules under the panic contract (R5). The
/// analyzer's own sources are held to the same standard.
pub const PANIC_CONTRACT_FILES: [&str; 3] = [
    "crates/bench/src/bin/experiments.rs",
    "crates/bench/src/experiments.rs",
    "crates/core/src/scenario.rs",
];

/// Prefixes under the panic contract in full.
pub const PANIC_CONTRACT_PREFIXES: [&str; 1] = ["crates/analyze/src/"];

/// The linalg/ml hot-path files (R6). `crates/linalg/src/kernels.rs`
/// is the documented home for sequential reductions and is therefore
/// *not* scanned: `dot_seq`/`sum_seq` live there.
pub const FLOAT_FOLD_FILES: [&str; 3] = [
    "crates/ml/src/dataset.rs",
    "crates/ml/src/logistic.rs",
    "crates/ml/src/scorecard.rs",
];

fn r1_applies(path: &str) -> bool {
    !WALL_CLOCK_MODULES.contains(&path)
}

fn r2_applies(path: &str) -> bool {
    DETERMINISTIC_PLANES.iter().any(|p| path.starts_with(p)) || DETERMINISTIC_FILES.contains(&path)
}

fn r3_applies(path: &str) -> bool {
    !THREAD_HOMES.contains(&path)
}

fn r5_applies(path: &str) -> bool {
    PANIC_CONTRACT_FILES.contains(&path)
        || PANIC_CONTRACT_PREFIXES.iter().any(|p| path.starts_with(p))
}

fn r6_applies(path: &str) -> bool {
    FLOAT_FOLD_FILES.contains(&path)
}

// ---------------------------------------------------------------------------
// Per-file matchers.
// ---------------------------------------------------------------------------

/// One `unsafe` keyword occurrence, for the R4 inventory.
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// True when a `// SAFETY:` comment appears in the preceding lines.
    pub documented: bool,
}

/// Everything the token-level pass extracts from one file.
pub struct FileFindings {
    /// R1/R2/R3/R5/R6 findings plus undocumented-unsafe R4 findings.
    pub findings: Vec<Finding>,
    /// Every non-test `unsafe` keyword, documented or not.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// True when the file carries `#![forbid(unsafe_code)]`.
    pub forbids_unsafe: bool,
}

/// Runs the token-level rules R1–R6 over one lexed file.
pub fn check_file(path: &str, fs: &FileScan) -> FileFindings {
    let mut findings = Vec::new();
    let mut unsafe_sites = Vec::new();

    let push = |findings: &mut Vec<Finding>, id: &'static str, line: u32, message: String| {
        let hint = rule(id).map(|r| r.hint).unwrap_or("");
        findings.push(Finding {
            rule: id.to_string(),
            file: path.to_string(),
            line,
            message,
            hint: hint.to_string(),
            waived: false,
        });
    };

    for p in 0..fs.code.len() {
        if fs.code_in_test(p) {
            continue;
        }
        let Some(t) = fs.code_tok(p) else { continue };

        // R1 clock-hygiene: Instant::now / SystemTime.
        if r1_applies(path) {
            if t.is_ident("Instant") && seq(fs, p + 1, &["::", "now"]) {
                push(
                    &mut findings,
                    "R1",
                    t.line,
                    "wall-clock read `Instant::now()` outside telemetry's wall-clock modules"
                        .to_string(),
                );
            }
            if t.is_ident("SystemTime") {
                push(
                    &mut findings,
                    "R1",
                    t.line,
                    "`SystemTime` used outside telemetry's wall-clock modules".to_string(),
                );
            }
        }

        // R2 order-hygiene: HashMap / HashSet in deterministic planes.
        if r2_applies(path) && (t.is_ident("HashMap") || t.is_ident("HashSet")) {
            push(
                &mut findings,
                "R2",
                t.line,
                format!(
                    "hash-ordered collection `{}` in a deterministic plane",
                    t.text
                ),
            );
        }

        // R3 thread-hygiene: thread::{spawn,scope,Builder}, parallelism probe.
        if r3_applies(path) {
            if t.is_ident("thread") {
                for m in ["spawn", "scope", "Builder"] {
                    if seq(fs, p + 1, &["::", m]) {
                        push(
                            &mut findings,
                            "R3",
                            t.line,
                            format!("`thread::{m}` outside core::pool"),
                        );
                    }
                }
            }
            if t.is_ident("available_parallelism") {
                push(
                    &mut findings,
                    "R3",
                    t.line,
                    "`available_parallelism()` probed outside core::pool".to_string(),
                );
            }
        }

        // R4 unsafe-audit: every unsafe keyword, with SAFETY lookback.
        if t.is_ident("unsafe") {
            let documented = has_safety_comment(fs, fs.code[p], t.line);
            if !documented {
                push(
                    &mut findings,
                    "R4",
                    t.line,
                    "`unsafe` without a preceding `// SAFETY:` comment".to_string(),
                );
            }
            unsafe_sites.push(UnsafeSite {
                line: t.line,
                documented,
            });
        }

        // R5 panic-contract: .unwrap()/.expect(), panic!-family macros.
        if r5_applies(path) {
            if t.is_punct(".") {
                if let Some(m) = fs.code_tok(p + 1) {
                    if m.is_ident("unwrap") || m.is_ident("expect") {
                        push(
                            &mut findings,
                            "R5",
                            m.line,
                            format!("`.{}()` in a CLI/artifact-I/O module", m.text),
                        );
                    }
                }
            }
            for mac in ["panic", "unreachable", "todo", "unimplemented"] {
                if t.is_ident(mac) {
                    if let Some(bang) = fs.code_tok(p + 1) {
                        if bang.is_punct("!") {
                            push(
                                &mut findings,
                                "R5",
                                t.line,
                                format!("`{mac}!` in a CLI/artifact-I/O module"),
                            );
                        }
                    }
                }
            }
        }

        // R6 float-fold: .sum()/.product()/.fold() in hot paths.
        if r6_applies(path) && t.is_punct(".") {
            if let Some(m) = fs.code_tok(p + 1) {
                if (m.is_ident("sum") || m.is_ident("product") || m.is_ident("fold"))
                    && fs
                        .code_tok(p + 2)
                        .map(|nx| nx.is_punct("(") || nx.is_punct("::"))
                        .unwrap_or(false)
                {
                    push(
                        &mut findings,
                        "R6",
                        m.line,
                        format!(
                            "iterator `.{}()` reduction in a hot path outside linalg::kernels",
                            m.text
                        ),
                    );
                }
            }
        }
    }

    FileFindings {
        findings,
        unsafe_sites,
        forbids_unsafe: has_forbid_unsafe(fs),
    }
}

/// Matches a sequence of expected tokens (`"::"` puncts or idents)
/// starting at code-position `p`.
fn seq(fs: &FileScan, p: usize, expect: &[&str]) -> bool {
    for (k, &e) in expect.iter().enumerate() {
        let Some(t) = fs.code_tok(p + k) else {
            return false;
        };
        let ok = if e == "::" || e.chars().all(|c| !c.is_alphanumeric() && c != '_') {
            t.is_punct(e)
        } else {
            t.is_ident(e)
        };
        if !ok {
            return false;
        }
    }
    true
}

/// True when a comment containing `SAFETY:` appears shortly before the
/// token at absolute index `k` (within the 8 preceding lines). The
/// window tolerates the comment sitting above the enclosing `let`
/// rather than flush against the `unsafe` keyword itself.
fn has_safety_comment(fs: &FileScan, k: usize, unsafe_line: u32) -> bool {
    let low = unsafe_line.saturating_sub(8);
    fs.toks[..k]
        .iter()
        .rev()
        .take_while(|t| t.line >= low)
        .any(|t| t.is_comment() && t.text.contains("SAFETY:"))
}

/// Detects the inner attribute `#![forbid(unsafe_code)]`.
pub fn has_forbid_unsafe(fs: &FileScan) -> bool {
    (0..fs.code.len()).any(|p| {
        fs.code_tok(p).map(|t| t.is_punct("#")).unwrap_or(false)
            && seq(
                fs,
                p + 1,
                &["!", "[", "forbid", "(", "unsafe_code", ")", "]"],
            )
    })
}

// ---------------------------------------------------------------------------
// R7: manifest scan.
// ---------------------------------------------------------------------------

/// Line-scans one `Cargo.toml` for non-path dependencies (R7).
///
/// The workspace's manifests keep one dependency per line, either
/// `name.workspace = true` or `name = { path = "..." }`; anything in a
/// dependency table that names neither `path` nor `workspace = true`
/// (registry versions, `git = ...`) is a finding.
pub fn check_manifest(path: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_dep_table = false;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let lineno = (idx + 1) as u32;
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            let section = line.trim_matches(|c| c == '[' || c == ']');
            in_dep_table = section == "dependencies"
                || section == "dev-dependencies"
                || section == "build-dependencies"
                || section == "workspace.dependencies"
                || section.ends_with(".dependencies");
            continue;
        }
        if !in_dep_table || !line.contains('=') {
            continue;
        }
        let ok = line.contains("path") || line.replace(' ', "").contains("workspace=true");
        if !ok {
            let hint = rule("R7").map(|r| r.hint).unwrap_or("");
            let dep = line.split('=').next().unwrap_or("").trim();
            findings.push(Finding {
                rule: "R7".to_string(),
                file: path.to_string(),
                line: lineno,
                message: format!("dependency `{dep}` is not a path/workspace entry"),
                hint: hint.to_string(),
                waived: false,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> FileFindings {
        check_file(path, &FileScan::new(src))
    }

    #[test]
    fn seq_matcher_requires_exact_run() {
        let fs = FileScan::new("Instant :: now ()");
        assert!(seq(&fs, 1, &["::", "now"]));
        assert!(!seq(&fs, 1, &["::", "then"]));
    }

    #[test]
    fn r1_ignores_comments_and_strings() {
        let src = "// Instant::now() is forbidden\nlet s = \"SystemTime\";\n";
        let out = scan("crates/core/src/runner.rs", src);
        assert!(out.findings.is_empty());
    }

    #[test]
    fn forbid_unsafe_attr_detected() {
        let fs = FileScan::new("#![forbid(unsafe_code)]\nfn main() {}\n");
        assert!(has_forbid_unsafe(&fs));
        let fs = FileScan::new("#![warn(missing_docs)]\n");
        assert!(!has_forbid_unsafe(&fs));
    }

    #[test]
    fn manifest_scan_flags_registry_dep() {
        let toml = "[package]\nname = \"x\"\n\n[dependencies]\nserde = \"1\"\nlocal = { path = \"../local\" }\ncore.workspace = true\n";
        let f = check_manifest("Cargo.toml", toml);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "R7");
        assert_eq!(f[0].line, 5);
        assert!(f[0].message.contains("serde"));
    }
}
