//! First-class **scenarios**: pluggable closed-loop workloads.
//!
//! The paper's claims are about *any* closed loop of AI system → users →
//! feedback filter, not just the credit case study. A [`Scenario`] bundles
//! one such workload end to end: its configuration at the two canonical
//! [`Scale`]s, the per-trial construction of its blocks, its record
//! policy and shard support, and the rendering of its outcomes into named
//! JSON/CSV [`Artifact`]s. Everything that is *not* workload-specific —
//! trial striping over worker threads, intra-trial sharding, artifact
//! validation and writing — is implemented once, generically:
//!
//! * [`run_scenario`] drives a typed [`Scenario`] through
//!   [`run_trials_with`](crate::trials::run_trials_with) and renders a
//!   [`ScenarioReport`];
//! * [`DynScenario`] is the object-safe form (blanket-implemented for
//!   every [`Scenario`]), so heterogeneous scenarios can live side by
//!   side in a static registry and behind a CLI;
//! * [`write_artifacts`] persists a report under an output directory with
//!   error messages that name the scenario and the path.
//!
//! A new workload therefore plugs into trials, sharding, determinism
//! checks and reporting by implementing one trait — no driver changes.
//!
//! # Implementing a scenario
//!
//! ```
//! use eqimpact_core::scenario::{
//!     run_scenario, Artifact, ArtifactSpec, Scale, Scenario, ScenarioConfig, ScenarioReport,
//! };
//!
//! /// A coin-flip "workload": every trial estimates the heads rate.
//! struct CoinScenario;
//!
//! impl Scenario for CoinScenario {
//!     type Outcome = f64;
//!     fn name(&self) -> &'static str { "coin" }
//!     fn description(&self) -> &'static str { "heads-rate toy scenario" }
//!     fn artifacts(&self) -> &'static [ArtifactSpec] {
//!         &[ArtifactSpec { name: "rates", description: "per-trial heads rates" }]
//!     }
//!     fn trials(&self, scale: Scale) -> usize {
//!         if scale.is_quick() { 2 } else { 5 }
//!     }
//!     fn run_trial(&self, _config: &ScenarioConfig, trial: usize) -> f64 {
//!         let mut rng = eqimpact_stats::SimRng::new(7 + trial as u64);
//!         (0..100).filter(|_| rng.bernoulli(0.5)).count() as f64 / 100.0
//!     }
//!     fn render(&self, _config: &ScenarioConfig, outcomes: &[f64]) -> ScenarioReport {
//!         let csv = outcomes.iter().enumerate()
//!             .fold("trial,rate\n".to_string(), |acc, (t, r)| acc + &format!("{t},{r}\n"));
//!         ScenarioReport {
//!             summary: vec![format!("{} trials", outcomes.len())],
//!             artifacts: vec![Artifact { name: "rates", file: "rates.csv".into(), contents: csv }],
//!         }
//!     }
//! }
//!
//! let report = run_scenario(&CoinScenario, &ScenarioConfig::new(Scale::Quick)).unwrap();
//! assert_eq!(report.artifacts.len(), 1);
//! ```

use crate::recorder::{RecordPolicy, StepSink};
use crate::trials::run_trials_with;
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Scale of a scenario run: [`Scale::Paper`] uses the source paper's full
/// parameters, [`Scale::Quick`] a reduced size for benches and CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's full parameters.
    Paper,
    /// Reduced size for fast iteration.
    Quick,
}

impl Scale {
    /// Whether this is the reduced scale.
    pub fn is_quick(self) -> bool {
        self == Scale::Quick
    }

    /// Picks between the paper-scale and quick-scale value of a
    /// parameter: `scale.pick(1000, 400)`.
    pub fn pick<T>(self, paper: T, quick: T) -> T {
        match self {
            Scale::Paper => paper,
            Scale::Quick => quick,
        }
    }
}

/// Per-loop provenance handed to a [`TraceSinkFactory`]: everything a
/// self-describing trace header needs to identify the recorded run.
#[derive(Debug, Clone)]
pub struct TraceMeta {
    /// The registry name of the scenario being recorded.
    pub scenario: String,
    /// Which of the scenario's loops this is (e.g. `scorecard`, or
    /// `adaptive` vs `credential` for scenarios running several loops per
    /// trial).
    pub variant: String,
    /// Trial index within the run.
    pub trial: usize,
    /// The run scale.
    pub scale: Scale,
    /// The effective base seed (trial `t` conventionally uses `seed + t`).
    pub seed: u64,
    /// Intra-trial shard count of the recorded run (provenance only —
    /// records are shard-invariant).
    pub shards: usize,
    /// Feedback delay of the loop, in steps.
    pub delay: usize,
    /// Record policy of the recorded run.
    pub policy: RecordPolicy,
}

/// Factory for per-loop [`StepSink`]s, carried by
/// [`ScenarioConfig::trace`]: a tracing scenario asks it for one sink per
/// recorded loop (trials run in parallel, so each sink must be
/// self-contained and `Send`).
///
/// Sink creation and writing are deliberately infallible at the call
/// site — a failing factory hands back a no-op sink and remembers why, so
/// trial workers never have to panic over trace I/O. [`run_scenario`]
/// collects the failures through [`Self::take_errors`] after the trials
/// and turns them into a [`ScenarioError::Trace`].
pub trait TraceSinkFactory: Send + Sync {
    /// A sink for one loop's telemetry. Implementations report creation
    /// failures through [`Self::take_errors`] and return a no-op sink.
    fn sink(&self, meta: &TraceMeta) -> Box<dyn StepSink + Send>;

    /// Drains every error recorded so far (creation or write failures).
    fn take_errors(&self) -> Vec<String>;
}

/// Run configuration handed to a scenario: the scale, the intra-trial
/// shard count, an optional seed override, an optional trace sink, and
/// (optionally) a subset of artifacts to produce.
#[derive(Clone)]
pub struct ScenarioConfig {
    /// The run scale.
    pub scale: Scale,
    /// Intra-trial shards: `1` = the sequential runner, `n > 1` = the
    /// sharded runner over `n` row shards, `0` = auto (one per available
    /// thread-budget lane). Records are bit-identical for every value —
    /// a pure perf knob.
    pub shards: usize,
    /// Base-seed override; `None` keeps the scenario's built-in seed.
    /// Honoured by every registered scenario, so any run can be
    /// reproduced (or varied) from the CLI.
    pub seed: Option<u64>,
    /// Optional trace sink: when set, scenarios that
    /// [support tracing](Scenario::supports_tracing) stream every loop's
    /// raw telemetry into per-trial sinks obtained from the factory.
    pub trace: Option<Arc<dyn TraceSinkFactory>>,
    /// Artifact names to produce; `None` means all. Validated by
    /// [`run_scenario`] against the scenario's [`Scenario::artifacts`].
    pub wanted: Option<BTreeSet<String>>,
}

impl fmt::Debug for ScenarioConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioConfig")
            .field("scale", &self.scale)
            .field("shards", &self.shards)
            .field("seed", &self.seed)
            .field("trace", &self.trace.as_ref().map(|_| "<sink factory>"))
            .field("wanted", &self.wanted)
            .finish()
    }
}

impl ScenarioConfig {
    /// A config producing every artifact with the sequential runner.
    pub fn new(scale: Scale) -> Self {
        ScenarioConfig {
            scale,
            shards: 1,
            seed: None,
            trace: None,
            wanted: None,
        }
    }

    /// Sets the intra-trial shard count (see [`Self::shards`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Overrides the scenario's base seed (see [`Self::seed`]).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Attaches a trace sink factory (see [`Self::trace`]).
    pub fn with_trace(mut self, factory: Arc<dyn TraceSinkFactory>) -> Self {
        self.trace = Some(factory);
        self
    }

    /// Restricts the run to the named artifacts.
    pub fn with_artifacts<I, T>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<String>,
    {
        self.wanted = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Whether the named artifact should be produced under this config.
    pub fn wants(&self, name: &str) -> bool {
        self.wanted.as_ref().is_none_or(|w| w.contains(name))
    }
}

/// Registry metadata of one artifact a scenario can produce. The CLI uses
/// these to validate requests and to answer `experiments list`.
#[derive(Debug, Clone, Copy)]
pub struct ArtifactSpec {
    /// Stable registry name (e.g. `fig3`), as selected on the CLI.
    pub name: &'static str,
    /// One-line description for listings.
    pub description: &'static str,
}

/// One rendered artifact: the spec name it realizes, the file it should
/// be written to (relative to the output directory), and its contents.
/// A single spec may render to several files (e.g. a JSON summary plus a
/// CSV series).
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The [`ArtifactSpec::name`] this file belongs to.
    pub name: &'static str,
    /// File name under the output directory.
    pub file: String,
    /// Rendered contents (CSV/JSON/plain text).
    pub contents: String,
}

/// The result of a scenario run: console summary lines plus the rendered
/// artifacts (write them with [`write_artifacts`]).
#[derive(Debug, Clone, Default)]
pub struct ScenarioReport {
    /// Human-readable summary lines, in print order.
    pub summary: Vec<String>,
    /// Rendered artifacts, restricted to the requested subset.
    pub artifacts: Vec<Artifact>,
}

/// Errors from validating, driving or persisting a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// An artifact name not in the scenario's spec list was requested.
    UnknownArtifact {
        /// The scenario asked.
        scenario: &'static str,
        /// The unknown request.
        artifact: String,
        /// Every valid artifact name of the scenario.
        known: Vec<&'static str>,
    },
    /// A shard count other than 1 was requested from a scenario whose
    /// workload has no intra-trial parallelism.
    ShardingUnsupported {
        /// The scenario asked.
        scenario: &'static str,
    },
    /// A trace sink was attached to a scenario that does not record
    /// traces ([`Scenario::supports_tracing`] is `false`).
    TracingUnsupported {
        /// The scenario asked.
        scenario: &'static str,
    },
    /// Recording the run's traces failed (sink creation or writes).
    Trace {
        /// The scenario being recorded.
        scenario: &'static str,
        /// Every failure the sink factory collected.
        message: String,
    },
    /// The scenario's workload itself failed (an experiment returned a
    /// named error instead of an outcome).
    Failed {
        /// The scenario that was running.
        scenario: &'static str,
        /// The experiment's error message.
        message: String,
    },
    /// Writing an artifact (or creating the output directory) failed.
    Io {
        /// The scenario whose artifact was being written.
        scenario: String,
        /// The path that failed.
        path: PathBuf,
        /// The underlying OS error message.
        message: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownArtifact {
                scenario,
                artifact,
                known,
            } => write!(
                f,
                "scenario `{scenario}` has no artifact `{artifact}` (known: {})",
                known.join(", ")
            ),
            ScenarioError::ShardingUnsupported { scenario } => write!(
                f,
                "scenario `{scenario}` does not support intra-trial sharding (run it with --shards 1)"
            ),
            ScenarioError::TracingUnsupported { scenario } => write!(
                f,
                "scenario `{scenario}` does not support trace recording"
            ),
            ScenarioError::Trace { scenario, message } => {
                write!(f, "scenario `{scenario}`: trace recording failed: {message}")
            }
            ScenarioError::Failed { scenario, message } => {
                write!(f, "scenario `{scenario}`: {message}")
            }
            ScenarioError::Io {
                scenario,
                path,
                message,
            } => write!(
                f,
                "scenario `{scenario}`: cannot write {}: {message}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A pluggable closed-loop workload (see the module docs). Implementors
/// provide configuration, per-trial execution and rendering; the generic
/// [`run_scenario`] driver supplies trial striping, artifact-subset
/// validation and (through [`ScenarioConfig::shards`]) intra-trial
/// sharding.
pub trait Scenario: Sync {
    /// Everything one trial produces (records, races, fitted models, …).
    type Outcome: Send;

    /// Stable registry name (e.g. `credit`), as selected on the CLI.
    fn name(&self) -> &'static str;

    /// One-line description for listings.
    fn description(&self) -> &'static str;

    /// The artifacts this scenario can render.
    fn artifacts(&self) -> &'static [ArtifactSpec];

    /// Whether the workload supports intra-trial sharding (a
    /// [`ShardedRunner`](crate::shard::ShardedRunner)-capable loop).
    /// Scenarios returning `false` are rejected for `shards != 1`.
    fn supports_sharding(&self) -> bool {
        true
    }

    /// Whether [`Self::run_trial`] honours [`ScenarioConfig::trace`]
    /// (streams each loop's telemetry into a sink from the factory).
    /// Scenarios returning `false` are rejected when a sink is attached,
    /// so a `record` request can never silently produce nothing.
    fn supports_tracing(&self) -> bool {
        false
    }

    /// The record policy the scenario's loops should run under.
    fn record_policy(&self, _scale: Scale) -> RecordPolicy {
        RecordPolicy::Full
    }

    /// Number of independent trials at a scale.
    fn trials(&self, scale: Scale) -> usize;

    /// Number of trials this particular config needs. Defaults to
    /// [`Self::trials`]; override to return `0` when the requested
    /// artifact subset can render without any trial outcomes (e.g. a
    /// pure table read), and the driver will skip the loop entirely.
    fn trials_needed(&self, config: &ScenarioConfig) -> usize {
        self.trials(config.scale)
    }

    /// Builds and runs one complete trial. Must be deterministic in
    /// `(config, trial)` — the conventional seed is `base + trial`.
    fn run_trial(&self, config: &ScenarioConfig, trial: usize) -> Self::Outcome;

    /// Renders the trial outcomes into a report, producing only the
    /// artifacts selected by [`ScenarioConfig::wants`].
    fn render(&self, config: &ScenarioConfig, outcomes: &[Self::Outcome]) -> ScenarioReport;
}

/// Validates a requested artifact subset against a spec list. Direct
/// [`DynScenario`] implementations (workloads that bypass the generic
/// trial driver) call this before running.
pub fn validate_artifacts(
    scenario: &'static str,
    specs: &[ArtifactSpec],
    config: &ScenarioConfig,
) -> Result<(), ScenarioError> {
    if let Some(wanted) = &config.wanted {
        for name in wanted {
            if !specs.iter().any(|s| s.name == name.as_str()) {
                return Err(ScenarioError::UnknownArtifact {
                    scenario,
                    artifact: name.clone(),
                    known: specs.iter().map(|s| s.name).collect(),
                });
            }
        }
    }
    Ok(())
}

/// Drives a typed [`Scenario`]: validates the artifact subset and shard
/// support, stripes the trials over worker threads leased from the
/// global [`ThreadBudget`](crate::pool::ThreadBudget)
/// ([`run_trials_with`]), and renders the report.
pub fn run_scenario<S: Scenario>(
    scenario: &S,
    config: &ScenarioConfig,
) -> Result<ScenarioReport, ScenarioError> {
    validate_artifacts(scenario.name(), scenario.artifacts(), config)?;
    if config.shards != 1 && !scenario.supports_sharding() {
        return Err(ScenarioError::ShardingUnsupported {
            scenario: scenario.name(),
        });
    }
    if config.trace.is_some() && !scenario.supports_tracing() {
        return Err(ScenarioError::TracingUnsupported {
            scenario: scenario.name(),
        });
    }
    let trials = scenario.trials_needed(config);
    let outcomes = if trials == 0 {
        Vec::new()
    } else {
        run_trials_with(trials, |t| scenario.run_trial(config, t))
    };
    if let Some(factory) = &config.trace {
        let errors = factory.take_errors();
        if !errors.is_empty() {
            return Err(ScenarioError::Trace {
                scenario: scenario.name(),
                message: errors.join("; "),
            });
        }
    }
    Ok(scenario.render(config, &outcomes))
}

/// The object-safe face of a scenario, so heterogeneous workloads can
/// share one static registry and one CLI. Blanket-implemented for every
/// [`Scenario`] (via [`run_scenario`]); workloads that do not fit the
/// trials-of-one-outcome shape (e.g. ablation suites) implement it
/// directly.
pub trait DynScenario: Sync {
    /// Stable registry name.
    fn name(&self) -> &'static str;

    /// One-line description for listings.
    fn description(&self) -> &'static str;

    /// The artifacts this scenario can render.
    fn artifacts(&self) -> &'static [ArtifactSpec];

    /// Whether the workload supports intra-trial sharding.
    fn supports_sharding(&self) -> bool;

    /// Whether the workload honours [`ScenarioConfig::trace`]. Defaults
    /// to `false` — direct implementors that do not record must also
    /// reject trace-bearing configs in [`Self::run`], so an attached
    /// sink can never be silently ignored.
    fn supports_tracing(&self) -> bool {
        false
    }

    /// Runs the scenario end to end under a config.
    fn run(&self, config: &ScenarioConfig) -> Result<ScenarioReport, ScenarioError>;
}

impl<S: Scenario> DynScenario for S {
    fn name(&self) -> &'static str {
        Scenario::name(self)
    }
    fn description(&self) -> &'static str {
        Scenario::description(self)
    }
    fn artifacts(&self) -> &'static [ArtifactSpec] {
        Scenario::artifacts(self)
    }
    fn supports_sharding(&self) -> bool {
        Scenario::supports_sharding(self)
    }
    fn supports_tracing(&self) -> bool {
        Scenario::supports_tracing(self)
    }
    fn run(&self, config: &ScenarioConfig) -> Result<ScenarioReport, ScenarioError> {
        run_scenario(self, config)
    }
}

/// Writes a report's artifacts under `out_dir` (created if missing),
/// returning the written paths in artifact order. Errors name the
/// scenario and the offending path instead of panicking.
pub fn write_artifacts(
    scenario: &str,
    report: &ScenarioReport,
    out_dir: &Path,
) -> Result<Vec<PathBuf>, ScenarioError> {
    let io_err = |path: &Path, e: std::io::Error| ScenarioError::Io {
        scenario: scenario.to_string(),
        path: path.to_path_buf(),
        message: e.to_string(),
    };
    std::fs::create_dir_all(out_dir).map_err(|e| io_err(out_dir, e))?;
    let mut written = Vec::with_capacity(report.artifacts.len());
    for artifact in &report.artifacts {
        let path = out_dir.join(&artifact.file);
        std::fs::write(&path, &artifact.contents).map_err(|e| io_err(&path, e))?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy;

    impl Scenario for Toy {
        type Outcome = usize;
        fn name(&self) -> &'static str {
            "toy"
        }
        fn description(&self) -> &'static str {
            "test scenario"
        }
        fn artifacts(&self) -> &'static [ArtifactSpec] {
            &[
                ArtifactSpec {
                    name: "alpha",
                    description: "the alpha artifact",
                },
                ArtifactSpec {
                    name: "beta",
                    description: "the beta artifact",
                },
            ]
        }
        fn supports_sharding(&self) -> bool {
            false
        }
        fn trials(&self, scale: Scale) -> usize {
            scale.pick(4, 2)
        }
        fn run_trial(&self, config: &ScenarioConfig, trial: usize) -> usize {
            trial * config.shards.max(1)
        }
        fn render(&self, config: &ScenarioConfig, outcomes: &[usize]) -> ScenarioReport {
            let mut artifacts = Vec::new();
            if config.wants("alpha") {
                artifacts.push(Artifact {
                    name: "alpha",
                    file: "alpha.csv".to_string(),
                    contents: format!("sum\n{}\n", outcomes.iter().sum::<usize>()),
                });
            }
            if config.wants("beta") {
                artifacts.push(Artifact {
                    name: "beta",
                    file: "beta.json".to_string(),
                    contents: format!("{{\"trials\": {}}}", outcomes.len()),
                });
            }
            ScenarioReport {
                summary: vec![format!("{} outcomes", outcomes.len())],
                artifacts,
            }
        }
    }

    #[test]
    fn scale_helpers() {
        assert!(Scale::Quick.is_quick());
        assert!(!Scale::Paper.is_quick());
        assert_eq!(Scale::Paper.pick(1000, 400), 1000);
        assert_eq!(Scale::Quick.pick(1000, 400), 400);
    }

    #[test]
    fn driver_runs_all_trials_in_order() {
        let report = run_scenario(&Toy, &ScenarioConfig::new(Scale::Quick)).unwrap();
        assert_eq!(report.summary, vec!["2 outcomes"]);
        assert_eq!(report.artifacts.len(), 2);
        // Quick: trials 0 and 1, shards 1 -> sum 0 + 1.
        assert_eq!(report.artifacts[0].contents, "sum\n1\n");
        let paper = run_scenario(&Toy, &ScenarioConfig::new(Scale::Paper)).unwrap();
        assert_eq!(paper.artifacts[1].contents, "{\"trials\": 4}");
    }

    #[test]
    fn artifact_subsets_are_validated_and_honoured() {
        let config = ScenarioConfig::new(Scale::Quick).with_artifacts(["beta"]);
        assert!(!config.wants("alpha"));
        assert!(config.wants("beta"));
        let report = run_scenario(&Toy, &config).unwrap();
        assert_eq!(report.artifacts.len(), 1);
        assert_eq!(report.artifacts[0].name, "beta");

        let bad = ScenarioConfig::new(Scale::Quick).with_artifacts(["gamma"]);
        match run_scenario(&Toy, &bad) {
            Err(ScenarioError::UnknownArtifact {
                scenario,
                artifact,
                known,
            }) => {
                assert_eq!(scenario, "toy");
                assert_eq!(artifact, "gamma");
                assert_eq!(known, vec!["alpha", "beta"]);
            }
            other => panic!("expected UnknownArtifact, got {other:?}"),
        }
    }

    #[test]
    fn sharding_support_is_enforced() {
        let config = ScenarioConfig::new(Scale::Quick).with_shards(4);
        match run_scenario(&Toy, &config) {
            Err(ScenarioError::ShardingUnsupported { scenario }) => assert_eq!(scenario, "toy"),
            other => panic!("expected ShardingUnsupported, got {other:?}"),
        }
        // Shards 0 (auto) is also a sharded request.
        assert!(run_scenario(&Toy, &ScenarioConfig::new(Scale::Quick).with_shards(0)).is_err());
    }

    #[test]
    fn dyn_scenario_matches_typed_driver() {
        let dyn_scenario: &dyn DynScenario = &Toy;
        assert_eq!(dyn_scenario.name(), "toy");
        assert_eq!(dyn_scenario.artifacts().len(), 2);
        assert!(!dyn_scenario.supports_sharding());
        let report = dyn_scenario
            .run(&ScenarioConfig::new(Scale::Quick))
            .unwrap();
        assert_eq!(report.artifacts.len(), 2);
    }

    #[test]
    fn write_artifacts_names_scenario_and_path_on_error() {
        let report = ScenarioReport {
            summary: Vec::new(),
            artifacts: vec![Artifact {
                name: "alpha",
                file: "alpha.csv".to_string(),
                contents: "x\n".to_string(),
            }],
        };
        let dir = std::env::temp_dir().join(format!("eqimpact_scenario_{}", std::process::id()));
        let written = write_artifacts("toy", &report, &dir).unwrap();
        assert_eq!(written.len(), 1);
        assert_eq!(std::fs::read_to_string(&written[0]).unwrap(), "x\n");
        std::fs::remove_dir_all(&dir).ok();

        // A path that cannot be a directory produces a named error.
        let bad = written[0].join("nested"); // parent is a file now gone; use a file as dir
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("blocker"), "").unwrap();
        let err = write_artifacts("toy", &report, &dir.join("blocker")).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("toy"), "{text}");
        assert!(text.contains("blocker"), "{text}");
        drop(bad);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let err = ScenarioError::UnknownArtifact {
            scenario: "credit",
            artifact: "quikc".to_string(),
            known: vec!["table1", "fig2"],
        };
        let text = err.to_string();
        assert!(text.contains("credit") && text.contains("quikc") && text.contains("table1"));
        let err = ScenarioError::ShardingUnsupported { scenario: "abl" };
        assert!(err.to_string().contains("--shards 1"));
    }
}
