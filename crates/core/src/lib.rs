//! The closed-loop view of an AI system and its users (the paper's Fig. 1),
//! with executable definitions of **equal treatment** (Defs. 1-2) and
//! **equal impact** (Defs. 3-4).
//!
//! The loop is decomposed exactly as in the figure:
//!
//! ```text
//!  Goal + AiSystem ──π(k)──▶ UserPopulation ──y(k)──▶ FeedbackFilter
//!        ▲                                                  │
//!        └────────────── Delay (retraining) ◀───────────────┘
//! ```
//!
//! * [`closed_loop`] — the [`closed_loop::AiSystem`],
//!   [`closed_loop::UserPopulation`] and [`closed_loop::FeedbackFilter`]
//!   traits plus the [`closed_loop::LoopRunner`] that wires them together
//!   with an explicit delay line;
//! * [`recorder`] — the complete telemetry of a run ([`recorder::LoopRecord`]);
//! * [`treatment`] — checkers for equal treatment, unconditional and
//!   conditioned on non-protected attributes;
//! * [`impact`] — estimators of the per-user Cesàro limits `r_i` and their
//!   coincidence, unconditional and group-conditioned;
//! * [`trials`] — deterministic multi-seed trial running, parallelized
//!   across threads.
//!
//! # Example
//!
//! A one-dimensional toy loop where the AI system broadcasts the filtered
//! average of past actions and users respond stochastically:
//!
//! ```
//! use eqimpact_core::closed_loop::*;
//! use eqimpact_core::impact::equal_impact_report;
//! use eqimpact_stats::SimRng;
//!
//! struct Broadcast(f64);
//! impl AiSystem for Broadcast {
//!     fn signals(&mut self, _k: usize, visible: &[Vec<f64>]) -> Vec<f64> {
//!         vec![self.0; visible.len()]
//!     }
//!     fn retrain(&mut self, _k: usize, feedback: &Feedback) {
//!         self.0 = 0.5 * self.0 + 0.5 * feedback.aggregate;
//!     }
//! }
//!
//! struct Coins(usize);
//! impl UserPopulation for Coins {
//!     fn user_count(&self) -> usize { self.0 }
//!     fn observe(&mut self, _k: usize, _rng: &mut SimRng) -> Vec<Vec<f64>> {
//!         vec![vec![]; self.0]
//!     }
//!     fn respond(&mut self, _k: usize, signals: &[f64], rng: &mut SimRng) -> Vec<f64> {
//!         signals.iter().map(|&s| if rng.bernoulli(0.2 + 0.6 * s.clamp(0.0, 1.0)) { 1.0 } else { 0.0 }).collect()
//!     }
//! }
//!
//! let mut runner = LoopRunner::new(
//!     Box::new(Broadcast(0.9)),
//!     Box::new(Coins(50)),
//!     Box::new(MeanFilter::default()),
//!     1,
//! );
//! let record = runner.run(3000, &mut SimRng::new(7));
//! let report = equal_impact_report(&record, 0.2, 0.1);
//! assert!(report.all_coincide);
//! ```

#![warn(missing_docs)]

pub mod closed_loop;
pub mod fairness;
pub mod impact;
pub mod recorder;
pub mod treatment;
pub mod trials;

pub use closed_loop::{AiSystem, Feedback, FeedbackFilter, LoopRunner, MeanFilter, UserPopulation};
pub use fairness::{demographic_parity, equal_opportunity, individual_fairness};
pub use impact::{equal_impact_report, EqualImpactReport};
pub use recorder::LoopRecord;
pub use treatment::{equal_treatment_report, EqualTreatmentReport};
pub use trials::{run_trials, TrialSet};
