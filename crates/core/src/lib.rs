//! The closed-loop view of an AI system and its users (the paper's Fig. 1),
//! with executable definitions of **equal treatment** (Defs. 1-2) and
//! **equal impact** (Defs. 3-4).
//!
//! The loop is decomposed exactly as in the figure:
//!
//! ```text
//!  Goal + AiSystem ──π(k)──▶ UserPopulation ──y(k)──▶ FeedbackFilter
//!        ▲                                                  │
//!        └────────────── Delay (retraining) ◀───────────────┘
//! ```
//!
//! * [`closed_loop`] — the [`closed_loop::AiSystem`],
//!   [`closed_loop::UserPopulation`] and [`closed_loop::FeedbackFilter`]
//!   traits plus the generic [`closed_loop::LoopRunner`] that wires them
//!   together with an explicit delay line. The runner is **statically
//!   dispatched** over its three blocks and drives them through in-place
//!   `*_into` hooks, so a steady-state step performs **zero allocations**
//!   when the blocks implement them (every trait method has a defaulted
//!   fallback, so owned-return implementations keep working). The
//!   [`closed_loop::DynLoopRunner`] alias is the fully boxed form for
//!   blocks chosen at runtime — bit-identical records, dynamic dispatch;
//! * [`features`] — [`features::FeatureMatrix`], the flat row-major
//!   feature storage that replaces `Vec<Vec<f64>>` on the hot path;
//! * [`recorder`] — the telemetry of a run ([`recorder::LoopRecord`],
//!   stored flat) and how much of it to keep ([`recorder::RecordPolicy`]);
//! * [`treatment`] — checkers for equal treatment, unconditional and
//!   conditioned on non-protected attributes;
//! * [`impact`] — estimators of the per-user Cesàro limits `r_i` and their
//!   coincidence, unconditional and group-conditioned;
//! * [`pool`] — the process-wide [`pool::ThreadBudget`] (every parallel
//!   region leases its lanes from one ledger, so `trials × shards` can
//!   never oversubscribe the host) and the [`pool::WorkerPool`] of
//!   long-lived parked workers with a submit/barrier protocol — one pool
//!   per run instead of threads per step;
//! * [`shard`] — deterministic **intra-trial** parallelism: the
//!   [`shard::ShardedRunner`] splits one step's user sweep over the
//!   parked workers of a budget-leased [`pool::WorkerPool`] (contiguous
//!   row shards, index-keyed [`shard::RowStreams`] RNG streams) and
//!   merges at a per-step barrier, producing records bit-identical to
//!   the sequential runner for any shard count;
//! * [`trials`] — deterministic multi-seed trial running, striped over
//!   lanes leased from the [`pool::ThreadBudget`];
//! * [`scenario`] — first-class pluggable workloads: the
//!   [`scenario::Scenario`] trait bundles a closed-loop workload's
//!   config ([`scenario::Scale`]), per-trial construction, record policy
//!   and shard support, and artifact rendering, so trial striping,
//!   sharding and artifact writing are implemented once generically
//!   ([`scenario::run_scenario`], [`scenario::write_artifacts`]); the
//!   object-safe [`scenario::DynScenario`] face powers static registries
//!   and the `experiments` CLI.
//!
//! # Example
//!
//! A one-dimensional toy loop, assembled with [`closed_loop::LoopBuilder`]:
//! the AI system broadcasts the filtered average of past actions and users
//! respond stochastically. The blocks implement the convenient
//! owned-return methods; swap in the `*_into` twins for allocation-free
//! stepping.
//!
//! ```
//! use eqimpact_core::closed_loop::{AiSystem, Feedback, LoopBuilder, MeanFilter, UserPopulation};
//! use eqimpact_core::features::FeatureMatrix;
//! use eqimpact_core::impact::equal_impact_report;
//! use eqimpact_core::recorder::RecordPolicy;
//! use eqimpact_stats::SimRng;
//!
//! struct Broadcast(f64);
//! impl AiSystem for Broadcast {
//!     fn signals(&mut self, _k: usize, visible: &FeatureMatrix) -> Vec<f64> {
//!         vec![self.0; visible.row_count()]
//!     }
//!     fn retrain(&mut self, _k: usize, feedback: &Feedback) {
//!         self.0 = 0.5 * self.0 + 0.5 * feedback.aggregate;
//!     }
//! }
//!
//! struct Coins(usize);
//! impl UserPopulation for Coins {
//!     fn user_count(&self) -> usize { self.0 }
//!     fn observe(&mut self, _k: usize, _rng: &mut SimRng) -> FeatureMatrix {
//!         FeatureMatrix::zeros(self.0, 0)
//!     }
//!     fn respond(&mut self, _k: usize, signals: &[f64], rng: &mut SimRng) -> Vec<f64> {
//!         signals.iter().map(|&s| if rng.bernoulli(0.2 + 0.6 * s.clamp(0.0, 1.0)) { 1.0 } else { 0.0 }).collect()
//!     }
//! }
//!
//! let mut runner = LoopBuilder::new(Broadcast(0.9), Coins(50))
//!     .filter(MeanFilter::default())
//!     .delay(1)                       // the paper's one-step delay
//!     .record(RecordPolicy::Full)     // keep every per-user series
//!     .build();
//! let record = runner.run(3000, &mut SimRng::new(7));
//! let report = equal_impact_report(&record, 0.2, 0.1);
//! assert!(report.all_coincide);
//! ```
//!
//! Boxed blocks still work — `LoopRunner::new(Box::new(ai) as Box<dyn
//! AiSystem>, ...)` builds a [`closed_loop::DynLoopRunner`] whose records
//! are bit-identical to the generic runner's for the same seed (a property
//! the test suite checks).

#![warn(missing_docs)]

pub mod checkpoint;
pub mod closed_loop;
pub mod fairness;
pub mod features;
pub mod impact;
pub mod pool;
pub mod recorder;
pub mod scenario;
pub mod shard;
pub mod treatment;
pub mod trials;

pub use checkpoint::ModelCheckpoint;
pub use closed_loop::{
    AiSystem, DynLoopRunner, Feedback, FeedbackFilter, LoopBuilder, LoopRunner, MeanFilter,
    UserPopulation,
};
pub use fairness::{demographic_parity, equal_opportunity, individual_fairness};
pub use features::FeatureMatrix;
pub use impact::{equal_impact_report, EqualImpactReport};
pub use pool::{BudgetLease, ThreadBudget, WorkerPool};
pub use recorder::{LoopRecord, RecordPolicy, StepSink};
pub use scenario::{
    run_scenario, write_artifacts, Artifact, ArtifactSpec, DynScenario, Scale, Scenario,
    ScenarioConfig, ScenarioError, ScenarioReport, TraceMeta, TraceSinkFactory,
};
pub use treatment::{equal_treatment_report, EqualTreatmentReport};
pub use trials::{run_trials, run_trials_with, run_trials_with_budget, TrialSet};
