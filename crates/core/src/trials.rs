//! Multi-trial execution: the paper's protocol of five independent trials,
//! each with a fresh batch of users, run in parallel with deterministic
//! per-trial seeds.
//!
//! The worker threads are leased from the process-wide
//! [`ThreadBudget`](crate::pool::ThreadBudget) (trials are striped over
//! the granted lanes), so trial parallelism composes with intra-trial
//! sharding instead of multiplying with it — a
//! [`ShardedRunner`](crate::shard::ShardedRunner) nested inside a trial
//! worker finds the budget spent and sweeps sequentially on its own
//! lane. A panic inside any trial is re-raised on the caller's thread
//! with the trial index attached.

use crate::pool::ThreadBudget;
use crate::recorder::LoopRecord;
use eqimpact_stats::describe::Summary;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// The records of a set of trials.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSet {
    /// One record per trial, in trial order.
    pub records: Vec<LoopRecord>,
}

/// Runs `trials` independent trials of any outcome type in parallel, on
/// worker threads leased from the **global**
/// [`ThreadBudget`](crate::pool::ThreadBudget). `factory(trial_index)`
/// must build and run one complete trial; it receives the trial index so
/// it can derive a deterministic seed (the convention is
/// `base_seed + trial_index`). Results come back in trial order.
///
/// # Panics
/// Panics when `trials == 0`, and re-raises the lowest-indexed per-trial
/// panic as `"trial <index> panicked: <message>"`.
pub fn run_trials_with<T, F>(trials: usize, factory: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_trials_with_budget(ThreadBudget::global(), trials, factory)
}

/// [`run_trials_with`] leasing from an explicit budget. The lease is
/// held for the whole protocol: `lease.lanes()` stripes run concurrently
/// (the caller's thread only waits, so its implicit lane is spent on one
/// of the stripes), and the lanes return to the budget when every trial
/// has finished.
pub fn run_trials_with_budget<T, F>(budget: &ThreadBudget, trials: usize, factory: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(trials > 0, "run_trials_with: zero trials");
    let lease = budget.lease(trials);
    let workers = lease.lanes().min(trials);
    let mut outcomes: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    // Lowest-indexed panic across all workers.
    let failure: Mutex<Option<(usize, String)>> = Mutex::new(None);

    // Stripe the trials over the workers: worker w owns trials w, w + W,
    // w + 2W, ... — a deterministic partition with no work queue.
    let stripes: Vec<Vec<(usize, &mut Option<T>)>> = {
        let mut stripes: Vec<Vec<(usize, &mut Option<T>)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (t, slot) in outcomes.iter_mut().enumerate() {
            stripes[t % workers].push((t, slot));
        }
        stripes
    };

    // One closure per stripe, all spawned through the sanctioned
    // scoped-run entry point in `pool` (thread-hygiene rule R3: this
    // module never touches `std::thread` directly).
    let jobs: Vec<_> = stripes
        .into_iter()
        .map(|stripe| {
            let factory = &factory;
            let failure = &failure;
            move || {
                for (t, slot) in stripe {
                    match catch_unwind(AssertUnwindSafe(|| factory(t))) {
                        Ok(outcome) => *slot = Some(outcome),
                        Err(payload) => {
                            let message = payload
                                .downcast_ref::<&str>()
                                .map(|s| (*s).to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".to_string());
                            let mut failure = failure.lock().unwrap_or_else(|e| e.into_inner());
                            let is_lowest =
                                failure.as_ref().map(|&(prev, _)| t < prev).unwrap_or(true);
                            if is_lowest {
                                *failure = Some((t, message));
                            }
                            return;
                        }
                    }
                }
            }
        })
        .collect();
    crate::pool::scoped_run(jobs);

    if let Some((t, message)) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        panic!("trial {t} panicked: {message}");
    }
    outcomes
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Runs `trials` independent loop trials in parallel (see
/// [`run_trials_with`] for the execution model).
pub fn run_trials<F>(trials: usize, factory: F) -> TrialSet
where
    F: Fn(usize) -> LoopRecord + Sync,
{
    TrialSet {
        records: run_trials_with(trials, factory),
    }
}

impl TrialSet {
    /// Number of trials.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the set is empty (never true for `run_trials` output).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Cross-trial mean and standard deviation of a per-trial scalar
    /// statistic.
    pub fn summarize(&self, stat: impl Fn(&LoopRecord) -> f64) -> Summary {
        let mut s = Summary::new();
        for r in &self.records {
            s.push(stat(r));
        }
        s
    }

    /// Cross-trial mean ± std of a per-trial *time series* (e.g. a group's
    /// ADR trajectory): returns `(mean[k], std[k])` per step. Trials must
    /// produce series of equal length.
    pub fn summarize_series(
        &self,
        series: impl Fn(&LoopRecord) -> Vec<f64>,
    ) -> (Vec<f64>, Vec<f64>) {
        let all: Vec<Vec<f64>> = self.records.iter().map(&series).collect();
        let len = all.first().map(|s| s.len()).unwrap_or(0);
        assert!(
            all.iter().all(|s| s.len() == len),
            "summarize_series: unequal series lengths"
        );
        let mut means = Vec::with_capacity(len);
        let mut stds = Vec::with_capacity(len);
        for k in 0..len {
            let mut s = Summary::new();
            for trial in &all {
                s.push(trial[k]);
            }
            means.push(s.mean());
            // Population std over the trial dimension, matching the error
            // shades of the paper's Fig. 3.
            stds.push(s.std_dev_population());
        }
        (means, stds)
    }

    /// All per-user action series across all trials (the 5 x 1000 curves
    /// of the paper's Fig. 4), as (trial, user, series) triples flattened
    /// to a vector of series.
    pub fn all_user_series(
        &self,
        extract: impl Fn(&LoopRecord, usize) -> Vec<f64>,
    ) -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        for r in &self.records {
            for i in 0..r.user_count() {
                out.push(extract(r, i));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqimpact_stats::SimRng;

    fn make_record(seed: usize, steps: usize) -> LoopRecord {
        let mut rng = SimRng::new(seed as u64);
        let mut r = LoopRecord::new(3);
        for _ in 0..steps {
            let actions: Vec<f64> = (0..3)
                .map(|_| if rng.bernoulli(0.3) { 1.0 } else { 0.0 })
                .collect();
            r.push_step(&[0.0; 3], &actions, &[0.0; 3]);
        }
        r
    }

    #[test]
    fn trials_are_deterministic_per_index() {
        let a = run_trials(4, |t| make_record(t, 50));
        let b = run_trials(4, |t| make_record(t, 50));
        assert_eq!(a.records, b.records);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_trials_differ() {
        let set = run_trials(2, |t| make_record(t, 200));
        assert_ne!(set.records[0], set.records[1]);
    }

    #[test]
    fn summarize_scalar() {
        let set = run_trials(8, |t| make_record(t, 500));
        let s = set.summarize(|r| r.mean_actions().iter().sum::<f64>() / r.steps() as f64);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 0.3).abs() < 0.08, "mean = {}", s.mean());
    }

    #[test]
    fn summarize_series_shapes() {
        let set = run_trials(5, |t| make_record(t, 100));
        let (mean, std) = set.summarize_series(|r| r.mean_actions());
        assert_eq!(mean.len(), 100);
        assert_eq!(std.len(), 100);
        assert!(std.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn all_user_series_flattens() {
        let set = run_trials(5, |t| make_record(t, 10));
        let series = set.all_user_series(|r, i| r.user_actions(i));
        // 5 trials x 3 users.
        assert_eq!(series.len(), 15);
        assert!(series.iter().all(|s| s.len() == 10));
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn zero_trials_rejected() {
        run_trials(0, |t| make_record(t, 1));
    }

    #[test]
    fn many_more_trials_than_cores_preserve_order() {
        // Far above any machine's parallelism: exercises the striping.
        let set = run_trials(64, |t| make_record(t, 3));
        assert_eq!(set.len(), 64);
        assert_eq!(set.records[10], make_record(10, 3));
        assert_eq!(set.records[63], make_record(63, 3));
    }

    #[test]
    fn run_trials_with_arbitrary_outcome_type() {
        let squares = run_trials_with(5, |t| t * t);
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn panics_carry_the_trial_index() {
        let result = std::panic::catch_unwind(|| {
            run_trials(8, |t| {
                if t == 5 {
                    panic!("boom");
                }
                make_record(t, 5)
            })
        });
        let payload = result.expect_err("must propagate the panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("string panic message");
        assert!(message.contains("trial 5 panicked"), "message: {message}");
        assert!(message.contains("boom"), "message: {message}");
    }

    #[test]
    #[should_panic(expected = "unequal series lengths")]
    fn unequal_series_rejected() {
        let set = run_trials(2, |t| make_record(t, 10 + t));
        let _ = set.summarize_series(|r| r.mean_actions());
    }
}
