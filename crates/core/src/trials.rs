//! Multi-trial execution: the paper's protocol of five independent trials,
//! each with a fresh batch of users, run in parallel with deterministic
//! per-trial seeds.

use crate::recorder::LoopRecord;
use eqimpact_stats::describe::Summary;
use serde::{Deserialize, Serialize};

/// The records of a set of trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialSet {
    /// One record per trial, in trial order.
    pub records: Vec<LoopRecord>,
}

/// Runs `trials` independent trials in parallel. `factory(trial_index)`
/// must build and run one complete loop and return its record; it receives
/// the trial index so it can derive a deterministic seed (the convention
/// is `base_seed + trial_index`).
pub fn run_trials<F>(trials: usize, factory: F) -> TrialSet
where
    F: Fn(usize) -> LoopRecord + Sync,
{
    assert!(trials > 0, "run_trials: zero trials");
    let mut records: Vec<Option<LoopRecord>> = (0..trials).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(trials);
        for (t, slot) in records.iter_mut().enumerate() {
            let factory = &factory;
            handles.push(scope.spawn(move || {
                *slot = Some(factory(t));
            }));
        }
        for h in handles {
            h.join().expect("trial thread panicked");
        }
    });
    TrialSet {
        records: records
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect(),
    }
}

impl TrialSet {
    /// Number of trials.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the set is empty (never true for `run_trials` output).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Cross-trial mean and standard deviation of a per-trial scalar
    /// statistic.
    pub fn summarize(&self, stat: impl Fn(&LoopRecord) -> f64) -> Summary {
        let mut s = Summary::new();
        for r in &self.records {
            s.push(stat(r));
        }
        s
    }

    /// Cross-trial mean ± std of a per-trial *time series* (e.g. a group's
    /// ADR trajectory): returns `(mean[k], std[k])` per step. Trials must
    /// produce series of equal length.
    pub fn summarize_series(
        &self,
        series: impl Fn(&LoopRecord) -> Vec<f64>,
    ) -> (Vec<f64>, Vec<f64>) {
        let all: Vec<Vec<f64>> = self.records.iter().map(&series).collect();
        let len = all.first().map(|s| s.len()).unwrap_or(0);
        assert!(
            all.iter().all(|s| s.len() == len),
            "summarize_series: unequal series lengths"
        );
        let mut means = Vec::with_capacity(len);
        let mut stds = Vec::with_capacity(len);
        for k in 0..len {
            let mut s = Summary::new();
            for trial in &all {
                s.push(trial[k]);
            }
            means.push(s.mean());
            // Population std over the trial dimension, matching the error
            // shades of the paper's Fig. 3.
            stds.push(s.std_dev_population());
        }
        (means, stds)
    }

    /// All per-user action series across all trials (the 5 x 1000 curves
    /// of the paper's Fig. 4), as (trial, user, series) triples flattened
    /// to a vector of series.
    pub fn all_user_series(&self, extract: impl Fn(&LoopRecord, usize) -> Vec<f64>) -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        for r in &self.records {
            for i in 0..r.user_count() {
                out.push(extract(r, i));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqimpact_stats::SimRng;

    fn make_record(seed: usize, steps: usize) -> LoopRecord {
        let mut rng = SimRng::new(seed as u64);
        let mut r = LoopRecord::new(3);
        for _ in 0..steps {
            let actions: Vec<f64> = (0..3)
                .map(|_| if rng.bernoulli(0.3) { 1.0 } else { 0.0 })
                .collect();
            r.push_step(&[0.0; 3], &actions, &[0.0; 3]);
        }
        r
    }

    #[test]
    fn trials_are_deterministic_per_index() {
        let a = run_trials(4, |t| make_record(t, 50));
        let b = run_trials(4, |t| make_record(t, 50));
        assert_eq!(a.records, b.records);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_trials_differ() {
        let set = run_trials(2, |t| make_record(t, 200));
        assert_ne!(set.records[0], set.records[1]);
    }

    #[test]
    fn summarize_scalar() {
        let set = run_trials(8, |t| make_record(t, 500));
        let s = set.summarize(|r| r.mean_actions().iter().sum::<f64>() / r.steps() as f64);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 0.3).abs() < 0.08, "mean = {}", s.mean());
    }

    #[test]
    fn summarize_series_shapes() {
        let set = run_trials(5, |t| make_record(t, 100));
        let (mean, std) = set.summarize_series(|r| r.mean_actions());
        assert_eq!(mean.len(), 100);
        assert_eq!(std.len(), 100);
        assert!(std.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn all_user_series_flattens() {
        let set = run_trials(5, |t| make_record(t, 10));
        let series = set.all_user_series(|r, i| r.user_actions(i));
        // 5 trials x 3 users.
        assert_eq!(series.len(), 15);
        assert!(series.iter().all(|s| s.len() == 10));
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn zero_trials_rejected() {
        run_trials(0, |t| make_record(t, 1));
    }

    #[test]
    #[should_panic(expected = "unequal series lengths")]
    fn unequal_series_rejected() {
        let set = run_trials(2, |t| make_record(t, 10 + t));
        let _ = set.summarize_series(|r| r.mean_actions());
    }
}
