//! Equal impact (Defs. 3-4): the long-run, ergodic property of the loop.
//!
//! Def. 3 requires each user's Cesàro average
//! `(1/(k+1)) Σ_{j≤k} y_i(j) → r_i` (independent of initial conditions)
//! with all `r_i` coinciding. On a finite record we (a) test that each
//! user's Cesàro tail has settled, (b) estimate `r_i` from the tail, and
//! (c) measure the spread of the estimates, unconditionally or per class.

use crate::recorder::LoopRecord;
use eqimpact_stats::timeseries::{cesaro_trajectory, has_settled, tail_mean};

/// Result of the equal-impact estimation on a recorded run.
#[derive(Debug, Clone, PartialEq)]
pub struct EqualImpactReport {
    /// Estimated limit `r_i` per user (tail mean of the Cesàro sequence).
    pub limits: Vec<f64>,
    /// Whether each user's Cesàro sequence has settled.
    pub converged: Vec<bool>,
    /// Fraction of users whose sequences settled.
    pub convergence_rate: f64,
    /// Largest pairwise spread of the (in-class) limits.
    pub max_spread: f64,
    /// Whether all (in-class) limits coincide within tolerance.
    pub all_coincide: bool,
    /// The conjunction: convergence for everyone and coinciding limits.
    pub satisfied: bool,
}

/// Estimates unconditional equal impact (Def. 3).
///
/// `tail_fraction` controls which suffix of the Cesàro sequence estimates
/// the limit and tests settlement; `tolerance` bounds both the settlement
/// fluctuation and the cross-user spread.
pub fn equal_impact_report(
    record: &LoopRecord,
    tail_fraction: f64,
    tolerance: f64,
) -> EqualImpactReport {
    let classes = vec![(0..record.user_count()).collect::<Vec<usize>>()];
    conditioned_equal_impact_report(record, &classes, tail_fraction, tolerance)
}

/// Estimates equal impact conditioned on classes of users (Def. 4).
pub fn conditioned_equal_impact_report(
    record: &LoopRecord,
    classes: &[Vec<usize>],
    tail_fraction: f64,
    tolerance: f64,
) -> EqualImpactReport {
    assert!(
        tail_fraction > 0.0 && tail_fraction <= 1.0,
        "tail_fraction outside (0,1]"
    );
    let n = record.user_count();
    let steps = record.steps();
    let mut limits = Vec::with_capacity(n);
    let mut converged = Vec::with_capacity(n);
    let window = ((steps as f64 * tail_fraction) as usize).max(1);

    for i in 0..n {
        let cesaro = cesaro_trajectory(&record.user_actions(i));
        if cesaro.is_empty() {
            limits.push(f64::NAN);
            converged.push(false);
            continue;
        }
        limits.push(tail_mean(&cesaro, tail_fraction));
        converged.push(has_settled(&cesaro, window, tolerance));
    }

    let convergence_rate = if n == 0 {
        0.0
    } else {
        converged.iter().filter(|&&c| c).count() as f64 / n as f64
    };

    let mut max_spread = 0.0f64;
    for class in classes {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &i in class {
            if limits[i].is_nan() {
                continue;
            }
            lo = lo.min(limits[i]);
            hi = hi.max(limits[i]);
        }
        if class.len() > 1 && hi >= lo {
            max_spread = max_spread.max(hi - lo);
        }
    }
    let all_coincide = max_spread <= tolerance;

    EqualImpactReport {
        convergence_rate,
        satisfied: all_coincide && convergence_rate >= 1.0 - 1e-12,
        all_coincide,
        max_spread,
        limits,
        converged,
    }
}

/// Group-level limit estimates (the `r_s` of eq. (13)): mean of the
/// in-class user limits per class.
pub fn group_limits(report: &EqualImpactReport, classes: &[Vec<usize>]) -> Vec<f64> {
    classes
        .iter()
        .map(|class| {
            let vals: Vec<f64> = class
                .iter()
                .map(|&i| report.limits[i])
                .filter(|v| !v.is_nan())
                .collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqimpact_stats::SimRng;

    /// Record where every user flips a fair coin: limits coincide at 0.5.
    fn iid_record(n: usize, steps: usize, seed: u64) -> LoopRecord {
        let mut rng = SimRng::new(seed);
        let mut r = LoopRecord::new(n);
        for _ in 0..steps {
            let actions: Vec<f64> = (0..n)
                .map(|_| if rng.bernoulli(0.5) { 1.0 } else { 0.0 })
                .collect();
            let signals = vec![1.0; n];
            let filtered = vec![0.0; n];
            r.push_step(&signals, &actions, &filtered);
        }
        r
    }

    /// Record with two persistent user groups at different levels.
    fn biased_record(steps: usize) -> LoopRecord {
        let mut r = LoopRecord::new(4);
        for _ in 0..steps {
            r.push_step(&[1.0; 4], &[1.0, 1.0, 0.0, 0.0], &[0.0; 4]);
        }
        r
    }

    #[test]
    fn iid_users_have_equal_impact() {
        let r = iid_record(20, 5_000, 1);
        let report = equal_impact_report(&r, 0.2, 0.05);
        assert!(report.all_coincide, "spread = {}", report.max_spread);
        assert!(report.convergence_rate > 0.99);
        assert!(report.satisfied);
        for &l in &report.limits {
            assert!((l - 0.5).abs() < 0.05);
        }
    }

    #[test]
    fn persistent_bias_fails_equal_impact() {
        let r = biased_record(1_000);
        let report = equal_impact_report(&r, 0.2, 0.05);
        // Cesàro sequences converge (rates 1 and 0) but the limits differ.
        assert!(report.convergence_rate > 0.99);
        assert!(!report.all_coincide);
        assert!((report.max_spread - 1.0).abs() < 1e-12);
        assert!(!report.satisfied);
    }

    #[test]
    fn conditioning_on_groups_rescues_def4() {
        let r = biased_record(1_000);
        let classes = vec![vec![0, 1], vec![2, 3]];
        let report = conditioned_equal_impact_report(&r, &classes, 0.2, 0.05);
        assert!(report.all_coincide);
        assert!(report.satisfied);
        let groups = group_limits(&report, &classes);
        assert!((groups[0] - 1.0).abs() < 1e-12);
        assert!(groups[1].abs() < 1e-12);
    }

    #[test]
    fn non_converged_series_flagged() {
        // A user whose action keeps trending (Cesàro not settled over the
        // tail window).
        let mut r = LoopRecord::new(1);
        for k in 0..100 {
            let y = if k < 50 { 0.0 } else { 1.0 };
            r.push_step(&[0.0], &[y], &[0.0]);
        }
        let report = equal_impact_report(&r, 0.3, 1e-4);
        assert!(!report.converged[0]);
        assert!(!report.satisfied);
    }

    #[test]
    fn empty_record_degenerates() {
        let r = LoopRecord::new(2);
        let report = equal_impact_report(&r, 0.5, 0.1);
        assert_eq!(report.limits.len(), 2);
        assert!(report.limits.iter().all(|l| l.is_nan()));
        assert_eq!(report.convergence_rate, 0.0);
    }

    #[test]
    #[should_panic(expected = "tail_fraction")]
    fn rejects_bad_tail_fraction() {
        let r = LoopRecord::new(1);
        equal_impact_report(&r, 0.0, 0.1);
    }
}
