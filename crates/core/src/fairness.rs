//! Classical fairness notions (the paper's Related Work, Sec. II-A),
//! computed on closed-loop telemetry so they can be contrasted with the
//! paper's equal treatment / equal impact.
//!
//! * **Demographic parity** (Calder et al. 2009): equal positive-decision
//!   rates across groups;
//! * **Equal opportunity** (Hardt et al. 2016): equal positive-decision
//!   rates among the "qualified" (here: users whose action would be
//!   favourable) across groups;
//! * **Individual fairness** (Dwork et al. 2012): similar users receive
//!   similar decisions — checked as a Lipschitz condition between a user
//!   similarity metric and a decision distance.
//!
//! All are *single-pass* (per-step or pooled) notions; the paper's point is
//! precisely that they do not see the loop's long-run behaviour.

use crate::recorder::LoopRecord;

/// Per-group rate with its sample size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupRate {
    /// The measured rate in `[0, 1]` (`NaN` when the group is empty).
    pub rate: f64,
    /// Number of (user, step) observations behind it.
    pub count: usize,
}

/// Result of a group-fairness computation.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupFairnessReport {
    /// One rate per group, in the order the groups were supplied.
    pub group_rates: Vec<GroupRate>,
    /// Largest pairwise gap between defined group rates.
    pub max_gap: f64,
    /// Ratio of smallest to largest defined rate (the "80 % rule"
    /// statistic); `NaN` when undefined.
    pub disparate_impact_ratio: f64,
}

fn group_report(rates: Vec<GroupRate>) -> GroupFairnessReport {
    let defined: Vec<f64> = rates
        .iter()
        .filter(|r| !r.rate.is_nan())
        .map(|r| r.rate)
        .collect();
    let (max_gap, ratio) = if defined.len() < 2 {
        (0.0, f64::NAN)
    } else {
        let hi = defined.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = defined.iter().cloned().fold(f64::INFINITY, f64::min);
        let ratio = if hi > 0.0 { lo / hi } else { f64::NAN };
        (hi - lo, ratio)
    };
    GroupFairnessReport {
        group_rates: rates,
        max_gap,
        disparate_impact_ratio: ratio,
    }
}

/// Demographic parity over a recorded run: positive-decision rate
/// (`signal > threshold`) per group, pooled over all steps.
pub fn demographic_parity(
    record: &LoopRecord,
    groups: &[Vec<usize>],
    decision_threshold: f64,
) -> GroupFairnessReport {
    let rates = groups
        .iter()
        .map(|members| {
            let mut positive = 0usize;
            let mut count = 0usize;
            for k in 0..record.steps() {
                let signals = record.signals(k);
                for &i in members {
                    count += 1;
                    if signals[i] > decision_threshold {
                        positive += 1;
                    }
                }
            }
            GroupRate {
                rate: if count == 0 {
                    f64::NAN
                } else {
                    positive as f64 / count as f64
                },
                count,
            }
        })
        .collect();
    group_report(rates)
}

/// Equal opportunity over a recorded run: positive-decision rate among
/// observations whose *action* was favourable (`action > action_threshold`)
/// — in the credit reading, approval rates among users who would repay.
///
/// Note the loop-censoring caveat: denied users' actions are forced
/// unfavourable, so this is the *observational* equal opportunity the
/// regulator can actually compute — exactly the quantity the paper argues
/// is insufficient without the long-run view.
pub fn equal_opportunity(
    record: &LoopRecord,
    groups: &[Vec<usize>],
    decision_threshold: f64,
    action_threshold: f64,
) -> GroupFairnessReport {
    let rates = groups
        .iter()
        .map(|members| {
            let mut positive = 0usize;
            let mut count = 0usize;
            for k in 0..record.steps() {
                let signals = record.signals(k);
                let actions = record.actions(k);
                for &i in members {
                    if actions[i] > action_threshold {
                        count += 1;
                        if signals[i] > decision_threshold {
                            positive += 1;
                        }
                    }
                }
            }
            GroupRate {
                rate: if count == 0 {
                    f64::NAN
                } else {
                    positive as f64 / count as f64
                },
                count,
            }
        })
        .collect();
    group_report(rates)
}

/// Result of the individual-fairness Lipschitz audit.
#[derive(Debug, Clone, PartialEq)]
pub struct IndividualFairnessReport {
    /// Largest observed ratio `|d_decision| / d_user` over audited pairs.
    pub worst_lipschitz_ratio: f64,
    /// The pair (step, user a, user b) achieving it, if any pair was
    /// audited.
    pub worst_pair: Option<(usize, usize, usize)>,
    /// Number of (step, pair) combinations audited.
    pub pairs_audited: usize,
}

/// Individual fairness (Dwork et al.): audits whether similar users (under
/// `user_distance` on their recorded filtered features) received similar
/// signals, step by step. A small `worst_lipschitz_ratio` certifies "similar
/// people treated similarly" on this run.
///
/// `user_distance` receives the two users' filtered values at the step.
pub fn individual_fairness(
    record: &LoopRecord,
    user_distance: impl Fn(f64, f64) -> f64,
    min_distance: f64,
) -> IndividualFairnessReport {
    let n = record.user_count();
    let mut worst = 0.0f64;
    let mut worst_pair = None;
    let mut audited = 0usize;
    for k in 0..record.steps() {
        let signals = record.signals(k);
        let filtered = record.filtered(k);
        for a in 0..n {
            for b in (a + 1)..n {
                let d_user = user_distance(filtered[a], filtered[b]);
                if d_user < min_distance {
                    continue;
                }
                let d_dec = (signals[a] - signals[b]).abs();
                let ratio = d_dec / d_user;
                audited += 1;
                if ratio > worst {
                    worst = ratio;
                    worst_pair = Some((k, a, b));
                }
            }
        }
    }
    IndividualFairnessReport {
        worst_lipschitz_ratio: worst,
        worst_pair,
        pairs_audited: audited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Record with two groups: group A (users 0,1) always approved, group
    /// B (users 2,3) approved half the time; actions favour group A.
    fn biased_record() -> LoopRecord {
        let mut r = LoopRecord::new(4);
        for k in 0..10 {
            let b_signal = if k % 2 == 0 { 1.0 } else { 0.0 };
            r.push_step(
                &[1.0, 1.0, b_signal, b_signal],
                &[1.0, 1.0, 1.0, 0.0],
                &[0.1, 0.1, 0.5, 0.9],
            );
        }
        r
    }

    #[test]
    fn demographic_parity_detects_decision_gap() {
        let r = biased_record();
        let groups = vec![vec![0, 1], vec![2, 3]];
        let report = demographic_parity(&r, &groups, 0.5);
        assert_eq!(report.group_rates[0].rate, 1.0);
        assert_eq!(report.group_rates[1].rate, 0.5);
        assert_eq!(report.max_gap, 0.5);
        assert_eq!(report.disparate_impact_ratio, 0.5);
        assert_eq!(report.group_rates[0].count, 20);
    }

    #[test]
    fn demographic_parity_equal_groups() {
        let mut r = LoopRecord::new(2);
        r.push_step(&[1.0, 1.0], &[0.0, 1.0], &[0.0, 0.0]);
        let report = demographic_parity(&r, &[vec![0], vec![1]], 0.5);
        assert_eq!(report.max_gap, 0.0);
        assert_eq!(report.disparate_impact_ratio, 1.0);
    }

    #[test]
    fn equal_opportunity_conditions_on_favourable_actions() {
        let r = biased_record();
        let groups = vec![vec![0, 1], vec![2, 3]];
        let report = equal_opportunity(&r, &groups, 0.5, 0.5);
        // Group A: all 20 favourable observations approved.
        assert_eq!(report.group_rates[0].rate, 1.0);
        // Group B: only user 2 ever has favourable action (10 obs), and is
        // approved on the 5 even steps.
        assert_eq!(report.group_rates[1].count, 10);
        assert_eq!(report.group_rates[1].rate, 0.5);
    }

    #[test]
    fn equal_opportunity_empty_group_is_nan() {
        let mut r = LoopRecord::new(2);
        r.push_step(&[1.0, 1.0], &[0.0, 0.0], &[0.0, 0.0]);
        let report = equal_opportunity(&r, &[vec![0], vec![1]], 0.5, 0.5);
        assert!(report.group_rates[0].rate.is_nan());
        assert!(report.disparate_impact_ratio.is_nan());
    }

    #[test]
    fn individual_fairness_flags_dissimilar_treatment_of_similar_users() {
        // Users 2 and 3 have filtered values 0.5 and 0.9 (distance 0.4)
        // and get identical signals; users 0 and 2 are 0.4 apart but can
        // get different signals on odd steps.
        let r = biased_record();
        let report = individual_fairness(&r, |a, b| (a - b).abs(), 0.05);
        assert!(report.pairs_audited > 0);
        // Worst pair: signal gap 1.0 over user distance 0.4 = 2.5.
        assert!((report.worst_lipschitz_ratio - 2.5).abs() < 1e-12);
        let (_, a, b) = report.worst_pair.unwrap();
        assert!(a < b);
    }

    #[test]
    fn individual_fairness_clean_when_signals_uniform() {
        let mut r = LoopRecord::new(3);
        for _ in 0..5 {
            r.push_step(&[1.0, 1.0, 1.0], &[1.0, 0.0, 1.0], &[0.1, 0.5, 0.9]);
        }
        let report = individual_fairness(&r, |a, b| (a - b).abs(), 0.05);
        assert_eq!(report.worst_lipschitz_ratio, 0.0);
    }
}
