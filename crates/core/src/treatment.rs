//! Equal treatment (Defs. 1-2): a single-pass property of the loop.
//!
//! Def. 1 requires (i) the system to provide the *same information* to all
//! users at each step, and (ii) the responses to sit at a constant level
//! `r` independent of initial conditions. Def. 2 relaxes (i)-(ii) to hold
//! within classes defined by **non-protected** attributes.

use crate::recorder::LoopRecord;

/// Result of an equal-treatment check.
#[derive(Debug, Clone, PartialEq)]
pub struct EqualTreatmentReport {
    /// Whether every step broadcast the same signal to every (in-class)
    /// user.
    pub same_signal: bool,
    /// Largest within-step signal spread observed (0 when `same_signal`).
    pub max_signal_spread: f64,
    /// Per-user mean response levels.
    pub response_levels: Vec<f64>,
    /// Largest spread between (in-class) response levels.
    pub max_response_spread: f64,
    /// Whether the response levels coincide within the tolerance used.
    pub responses_coincide: bool,
    /// The conjunction: the loop satisfies equal treatment.
    pub satisfied: bool,
}

/// Checks unconditional equal treatment (Def. 1) on a recorded run.
///
/// `tolerance` bounds both the within-step signal spread and the
/// between-user response-level spread.
pub fn equal_treatment_report(record: &LoopRecord, tolerance: f64) -> EqualTreatmentReport {
    let classes = vec![(0..record.user_count()).collect::<Vec<usize>>()];
    conditioned_equal_treatment_report(record, &classes, tolerance)
}

/// Checks equal treatment conditioned on classes of users (Def. 2). Each
/// class is a set of user indices sharing non-protected attributes; the
/// check is applied within every class.
pub fn conditioned_equal_treatment_report(
    record: &LoopRecord,
    classes: &[Vec<usize>],
    tolerance: f64,
) -> EqualTreatmentReport {
    let steps = record.steps();
    let mut max_signal_spread = 0.0f64;
    for k in 0..steps {
        let signals = record.signals(k);
        for class in classes {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &i in class {
                lo = lo.min(signals[i]);
                hi = hi.max(signals[i]);
            }
            if class.len() > 1 {
                max_signal_spread = max_signal_spread.max(hi - lo);
            }
        }
    }
    let same_signal = max_signal_spread <= tolerance;

    // Response level per user = mean action over the run.
    let response_levels: Vec<f64> = (0..record.user_count())
        .map(|i| {
            let series = record.user_actions(i);
            if series.is_empty() {
                f64::NAN
            } else {
                series.iter().sum::<f64>() / series.len() as f64
            }
        })
        .collect();

    let mut max_response_spread = 0.0f64;
    for class in classes {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &i in class {
            lo = lo.min(response_levels[i]);
            hi = hi.max(response_levels[i]);
        }
        if class.len() > 1 {
            max_response_spread = max_response_spread.max(hi - lo);
        }
    }
    let responses_coincide = max_response_spread <= tolerance;

    EqualTreatmentReport {
        same_signal,
        max_signal_spread,
        response_levels,
        max_response_spread,
        responses_coincide,
        satisfied: same_signal && responses_coincide,
    }
}

/// Partitions users into classes by a discrete non-protected attribute.
///
/// # Panics
/// Panics when `attribute.len()` differs from the user count implied by
/// the maximum index usage (callers pass one attribute per user).
pub fn classes_by_attribute(attribute: &[u32]) -> Vec<Vec<usize>> {
    let mut classes: std::collections::BTreeMap<u32, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, &a) in attribute.iter().enumerate() {
        classes.entry(a).or_default().push(i);
    }
    classes.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_uniform_signals() -> LoopRecord {
        let mut r = LoopRecord::new(3);
        r.push_step(&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0], &[0.0; 3]);
        r.push_step(&[0.5, 0.5, 0.5], &[1.0, 1.0, 1.0], &[0.0; 3]);
        r
    }

    #[test]
    fn uniform_loop_satisfies_equal_treatment() {
        let r = record_uniform_signals();
        let report = equal_treatment_report(&r, 1e-9);
        assert!(report.same_signal);
        assert!(report.responses_coincide);
        assert!(report.satisfied);
        assert_eq!(report.max_signal_spread, 0.0);
        assert_eq!(report.response_levels, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn differentiated_signals_fail_def1() {
        let mut r = LoopRecord::new(2);
        r.push_step(&[1.0, 0.0], &[1.0, 1.0], &[0.0; 2]);
        let report = equal_treatment_report(&r, 1e-9);
        assert!(!report.same_signal);
        assert_eq!(report.max_signal_spread, 1.0);
        assert!(!report.satisfied);
    }

    #[test]
    fn unequal_responses_fail_def1() {
        let mut r = LoopRecord::new(2);
        r.push_step(&[1.0, 1.0], &[1.0, 0.0], &[0.0; 2]);
        r.push_step(&[1.0, 1.0], &[1.0, 0.0], &[0.0; 2]);
        let report = equal_treatment_report(&r, 0.1);
        assert!(report.same_signal);
        assert!(!report.responses_coincide);
        assert_eq!(report.max_response_spread, 1.0);
    }

    #[test]
    fn conditioning_rescues_class_uniform_treatment() {
        // Users 0, 1 get signal 1.0; user 2 gets 0.0 — fails Def. 1 but
        // satisfies Def. 2 with classes {0,1} and {2}.
        let mut r = LoopRecord::new(3);
        r.push_step(&[1.0, 1.0, 0.0], &[1.0, 1.0, 0.0], &[0.0; 3]);
        r.push_step(&[1.0, 1.0, 0.0], &[1.0, 1.0, 0.0], &[0.0; 3]);
        let unconditional = equal_treatment_report(&r, 1e-9);
        assert!(!unconditional.satisfied);
        let classes = vec![vec![0, 1], vec![2]];
        let conditional = conditioned_equal_treatment_report(&r, &classes, 1e-9);
        assert!(conditional.satisfied);
    }

    #[test]
    fn classes_by_attribute_partitions() {
        let classes = classes_by_attribute(&[1, 0, 1, 2, 0]);
        assert_eq!(classes, vec![vec![1, 4], vec![0, 2], vec![3]]);
        // Full overlap of classes reduces Def. 2 to Def. 1 (noted in the
        // paper): one class containing everyone.
        let single = classes_by_attribute(&[7, 7, 7]);
        assert_eq!(single, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn singleton_classes_trivially_satisfied() {
        let mut r = LoopRecord::new(2);
        r.push_step(&[1.0, 0.0], &[1.0, 0.0], &[0.0; 2]);
        let classes = vec![vec![0], vec![1]];
        let report = conditioned_equal_treatment_report(&r, &classes, 1e-9);
        assert!(report.satisfied);
        assert_eq!(report.max_signal_spread, 0.0);
    }
}
