//! Deterministic intra-trial sharding: one closed-loop step, split over
//! cores.
//!
//! The paper's protocol is embarrassingly parallel over users *within* a
//! step — decisions and responses are per-user, only the feedback filter
//! aggregates. [`ShardedRunner`] exploits exactly that shape: it
//! partitions the population's rows into contiguous shards, runs the
//! observe → signal → respond sweep of each shard on the parked workers
//! of a per-run [`WorkerPool`] (leased from the process-wide
//! [`ThreadBudget`]), and re-joins at a per-step barrier where the
//! [`FeedbackFilter`], the [`LoopRecord`] and retraining run sequentially
//! on the merged buffers — byte-for-byte the same tail as
//! [`LoopRunner`](crate::closed_loop::LoopRunner).
//!
//! # The determinism contract
//!
//! The headline guarantee is that the produced [`LoopRecord`] is
//! **bit-identical for any shard count, including the sequential
//! [`LoopRunner`](crate::closed_loop::LoopRunner)**. Randomness therefore
//! cannot flow through one sequential stream (its consumption order would
//! depend on the partition). Instead, both runners derive *index-keyed*
//! streams through [`RowStreams`]: the stream feeding row `i` at step `k`
//! is a pure function of `(root seed, phase, k, i)` — never of the shard
//! layout or of how much any other row consumed. A shard-capable block
//! draws **all** of row `i`'s randomness from `RowStreams::for_row(i)`;
//! its sequential `*_into` methods must route through the same derivation
//! (the blanket pattern is to implement the sequential method as the
//! full-range shard call), which is what makes the cross-shard property
//! tests exact rather than approximate.
//!
//! Blocks opt in through three traits:
//!
//! * [`ShardableAi`] — batched signal computation over a shard's columns
//!   from `&self` (the model is read-only during the sweep; it mutates
//!   only in `retrain`, at the barrier);
//! * [`ShardablePopulation`] — partitions the population into owned,
//!   [`Send`] row shards;
//! * [`PopulationShard`] — the per-shard observe/respond sweep over the
//!   shard's own rows.
//!
//! Third-party blocks that only implement the base traits keep working
//! everywhere the sequential runner is used; sharding simply requires the
//! extra impls.

use crate::checkpoint::ModelCheckpoint;
use crate::closed_loop::{AiSystem, Feedback, FeedbackFilter, UserPopulation};
use crate::features::FeatureMatrix;
use crate::pool::{PoolJob, ThreadBudget, WorkerPool};
use crate::recorder::{LoopRecord, RecordPolicy, StepSink};
use eqimpact_stats::SimRng;
use eqimpact_telemetry::metrics as tm;
use std::collections::VecDeque;
use std::ops::Range;

/// Phase label of the observation sweep (arbitrary fixed constant).
const OBSERVE_PHASE: u64 = 0x9a1c_55d1_0b93_7d01;

/// Phase label of the response sweep.
const RESPOND_PHASE: u64 = 0x3c6e_f372_fe94_f82a;

/// Index-keyed per-row RNG streams for one phase of one step.
///
/// Built from the loop's root stream plus `(phase, step)`;
/// [`Self::for_row`] then derives the stream of a single global row. The
/// derivation is label-based ([`SimRng::split`]), so it depends only on
/// the root *seed* — every shard can hold its own copy and rows can be
/// visited in any order or from any thread without changing a single
/// sample.
///
/// Seed-keyed also means **state-insensitive**: blocks driven through
/// `RowStreams` never consume the `&mut SimRng` a runner passes them, so
/// two `run()` calls sharing one rng replay the same draws (step labels
/// restart at 0) rather than continuing the stream. Give each run its
/// own stream — e.g. `&mut rng.split(run_index)` — when independent
/// randomness is wanted.
#[derive(Debug, Clone)]
pub struct RowStreams {
    base: SimRng,
}

impl RowStreams {
    /// Streams of the observation sweep of step `k`.
    pub fn observe(rng: &SimRng, k: usize) -> Self {
        RowStreams {
            base: rng.split(OBSERVE_PHASE).split(k as u64),
        }
    }

    /// Streams of the response sweep of step `k`.
    pub fn respond(rng: &SimRng, k: usize) -> Self {
        RowStreams {
            base: rng.split(RESPOND_PHASE).split(k as u64),
        }
    }

    /// The stream feeding global row `row` in this phase.
    pub fn for_row(&self, row: usize) -> SimRng {
        self.base.split(row as u64)
    }
}

/// Immutable columnar view of a contiguous block of global rows
/// `[start, start + len)`: one slice per feature column, each covering
/// exactly those rows.
///
/// The covered rows are reported by their **global** range so shard code
/// never has to translate offsets (and cannot accidentally key RNG
/// streams by a local index); the column slices themselves are local —
/// `col(j)[local]` is global row `rows().start + local`. This is the
/// batched-kernel shape: every column streams linearly.
#[derive(Debug, Clone)]
pub struct ColsView<'a> {
    cols: Vec<&'a [f64]>,
    rows: Range<usize>,
}

impl<'a> ColsView<'a> {
    /// Wraps per-column slices as the global rows `rows`.
    ///
    /// # Panics
    /// Panics when any column's length differs from `rows.len()`.
    pub fn new(cols: Vec<&'a [f64]>, rows: Range<usize>) -> Self {
        for (j, col) in cols.iter().enumerate() {
            assert_eq!(
                col.len(),
                rows.len(),
                "ColsView: column {j} length mismatch"
            );
        }
        ColsView { cols, rows }
    }

    /// The global row range covered by this view.
    pub fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }

    /// Cells per row (number of columns).
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Column `j` over this view's rows (`col(j)[local]` is global row
    /// `rows().start + local`).
    ///
    /// # Panics
    /// Panics when `j >= width()`.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [f64] {
        self.cols[j]
    }

    /// All columns, in order — the shape the batched scoring kernels
    /// take.
    pub fn cols(&self) -> &[&'a [f64]] {
        &self.cols
    }
}

/// The full-range [`ColsView`] over a feature matrix — the sequential
/// path of a sharded signal computation (see
/// [`ShardableAi::signals_full`]).
pub fn full_cols(visible: &FeatureMatrix) -> ColsView<'_> {
    ColsView::new(visible.col_slices(), 0..visible.row_count())
}

/// Mutable counterpart of [`ColsView`] — the observe sweep's output.
#[derive(Debug)]
pub struct ColsMut<'a> {
    cols: Vec<&'a mut [f64]>,
    rows: Range<usize>,
}

impl<'a> ColsMut<'a> {
    /// Wraps per-column slices as the global rows `rows`.
    ///
    /// # Panics
    /// Panics when any column's length differs from `rows.len()`.
    pub fn new(cols: Vec<&'a mut [f64]>, rows: Range<usize>) -> Self {
        for (j, col) in cols.iter().enumerate() {
            assert_eq!(col.len(), rows.len(), "ColsMut: column {j} length mismatch");
        }
        ColsMut { cols, rows }
    }

    /// The full-range mutable view over a feature matrix — the
    /// sequential path of a sharded observe sweep.
    pub fn full(visible: &'a mut FeatureMatrix) -> Self {
        let rows = 0..visible.row_count();
        ColsMut::new(visible.col_slices_mut(), rows)
    }

    /// The global row range covered by this view.
    pub fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }

    /// Cells per row (number of columns).
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Column `j`, mutable (`col_mut(j)[local]` is global row
    /// `rows().start + local`).
    ///
    /// # Panics
    /// Panics when `j >= width()`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        self.cols[j]
    }

    /// Two distinct columns, both mutable — the shape of observe sweeps
    /// that write a code column and a raw-value column per row.
    ///
    /// # Panics
    /// Panics when `a == b` or either index is out of range.
    pub fn cols_pair_mut(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        assert!(a != b, "cols_pair_mut: columns must be distinct");
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.cols.split_at_mut(hi);
        let (x, y) = (&mut *head[lo], &mut *tail[0]);
        if a < b {
            (x, y)
        } else {
            (y, x)
        }
    }

    /// Reborrows as a shared [`ColsView`] (observe's output becomes the
    /// signal sweep's input).
    pub fn as_view(&self) -> ColsView<'_> {
        ColsView {
            cols: self.cols.iter().map(|c| &**c).collect(),
            rows: self.rows.clone(),
        }
    }
}

/// An AI system whose signal computation can run batched and
/// concurrently.
///
/// [`Self::signals_batch`] is the **single scoring entry point**: the
/// sharded runner calls it per shard with that shard's columns, and the
/// sequential path reaches it through the provided
/// [`Self::signals_full`] bridge, so every implementation writes the
/// scoring routine exactly once.
///
/// The model is read-only (`&self`) during the sweep — it only mutates in
/// [`AiSystem::retrain`], which the sharded runner calls at the step
/// barrier, after every worker has joined. To keep the sequential and
/// sharded paths bit-identical, implement [`AiSystem::signals_into`] as
/// the one-line delegation to [`Self::signals_full`].
///
/// Per-user state (score histories, exclusion flags, …) must be sized
/// and maintained in `retrain` — the `&self` sweep cannot resize it. A
/// stateful AI block is a **per-population** block: build a fresh one
/// instead of reusing it against a differently sized population.
pub trait ShardableAi: AiSystem + Sync {
    /// Computes signals for the rows of `visible`, writing `out[j]` for
    /// global row `visible.rows().start + j`. Must read only the given
    /// rows (other shards' rows may still be in flight).
    fn signals_batch(&self, k: usize, visible: &ColsView<'_>, out: &mut [f64]);

    /// The sequential bridge: sizes `out` and scores the whole matrix
    /// through [`Self::signals_batch`]. The canonical
    /// [`AiSystem::signals_into`] of a [`ShardableAi`] is
    /// `self.signals_full(k, visible, out)`.
    fn signals_full(&self, k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        out.clear();
        out.resize(visible.row_count(), 0.0);
        self.signals_batch(k, &full_cols(visible), out);
    }
}

/// One contiguous, owned row-partition of a [`ShardablePopulation`].
///
/// Shards are moved onto scoped worker threads, so they own their slice
/// of the per-user state. All randomness of global row `i` must come from
/// `streams.for_row(i)` — that is the whole determinism contract.
pub trait PopulationShard: Send {
    /// The global rows this shard owns.
    fn rows(&self) -> Range<usize>;

    /// Advances this shard's users to step `k` and writes their visible
    /// feature columns. `out` covers exactly [`Self::rows`].
    fn observe_cols(&mut self, k: usize, streams: &RowStreams, out: &mut ColsMut<'_>);

    /// Responds to this shard's signals (`signals[j]` is global row
    /// `rows().start + j`), writing the actions in the same layout.
    fn respond_rows(&mut self, k: usize, signals: &[f64], streams: &RowStreams, out: &mut [f64]);
}

/// A population that can be partitioned into independently steppable,
/// contiguous row shards.
///
/// To keep the sequential and sharded paths bit-identical, implement
/// [`UserPopulation::observe_into`] / [`UserPopulation::respond_into`] as
/// the full-range calls of the shard sweep (see the module docs).
pub trait ShardablePopulation: UserPopulation + Sized {
    /// The owned shard type.
    type Shard: PopulationShard;

    /// Width of the visible feature rows (must match what
    /// [`PopulationShard::observe_cols`] writes).
    fn feature_width(&self) -> usize;

    /// Partitions the population into at most `parts` contiguous shards
    /// covering `0..user_count()` in order (use [`shard_bounds`]).
    fn into_row_shards(self, parts: usize) -> Vec<Self::Shard>;

    /// Reassembles a population from its shards (inverse of
    /// [`Self::into_row_shards`]).
    fn from_row_shards(shards: Vec<Self::Shard>) -> Self;
}

/// Contiguous, near-equal partition of `rows` into at most `parts`
/// non-empty ranges (fewer when `rows < parts`; empty when `rows == 0`).
///
/// # Panics
/// Panics when `parts == 0`.
pub fn shard_bounds(rows: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "shard_bounds: zero parts");
    let parts = parts.min(rows.max(1));
    if rows == 0 {
        return Vec::new();
    }
    let base = rows / parts;
    let extra = rows % parts;
    let mut bounds = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        bounds.push(start..start + len);
        start += len;
    }
    bounds
}

/// The number of shards to use when the caller asks for "auto": the
/// lanes the **global** [`ThreadBudget`] could lease right now (the
/// caller's own lane plus whatever is free — not the raw core count, so
/// a run nested under trial striping auto-resolves to what it can
/// actually use instead of oversubscribing the host).
pub fn auto_shards() -> usize {
    auto_shards_for(ThreadBudget::global())
}

/// [`auto_shards`] against an explicit budget.
pub fn auto_shards_for(budget: &ThreadBudget) -> usize {
    budget.available_lanes()
}

/// The sharded loop runner: same wiring as
/// [`LoopRunner`](crate::closed_loop::LoopRunner) — AI system, population,
/// filter, delay line — but each step's user sweep is partitioned over
/// the parked workers of a [`WorkerPool`].
///
/// Per step: every shard runs observe → signal → respond over its own
/// rows, writing into disjoint sub-slices of the step buffers; at the
/// step barrier the main thread applies the [`FeedbackFilter`] to the
/// merged buffers, records the step, and retrains through the delay line
/// — exactly the sequential tail, in the sequential order. See the module
/// docs for the determinism contract.
///
/// Cost model: one run leases its lanes from the [`ThreadBudget`] and
/// spawns one [`WorkerPool`] (`lanes − 1` threads, zero when the budget
/// is spent), then per step only *submits* jobs to the parked workers —
/// a channel send and a futex wake per shard, single-digit microseconds
/// rather than the tens of microseconds a per-step thread spawn used to
/// cost (`steps × (shards − 1)` spawns before the pool; `lanes − 1`
/// total now). Shards beyond the leased lanes stripe onto the same
/// workers, so an over-sharded run degrades gracefully to fewer lanes —
/// and to a plain sequential sweep on a fully leased budget. The
/// filter/record/retrain barrier is sequential, so Amdahl's law still
/// bounds the speedup by its share of a step; for tiny populations the
/// sequential [`LoopRunner`](crate::closed_loop::LoopRunner) remains the
/// better choice.
///
/// Build one with
/// [`LoopBuilder::shards`](crate::closed_loop::LoopBuilder::shards) +
/// [`build_sharded`](crate::closed_loop::LoopBuilder::build_sharded), or
/// positionally with [`ShardedRunner::new`].
pub struct ShardedRunner<S, P: ShardablePopulation, F> {
    ai: S,
    shards: Vec<P::Shard>,
    filter: F,
    delay: usize,
    policy: RecordPolicy,
    budget: &'static ThreadBudget,
    user_count: usize,
    width: usize,
    pending: VecDeque<Feedback>,
    spare: Vec<Feedback>,
    visible: FeatureMatrix,
    signals: Vec<f64>,
    actions: Vec<f64>,
}

impl<S: ShardableAi, P: ShardablePopulation, F: FeedbackFilter> ShardedRunner<S, P, F> {
    /// Creates a runner over at most `shards` shards (`0` means auto:
    /// [`auto_shards`]), leasing lanes from the global [`ThreadBudget`].
    /// See [`LoopRunner::new`](crate::closed_loop::LoopRunner::new) for
    /// the delay semantics.
    ///
    /// # Panics
    /// Panics when the population's
    /// [`into_row_shards`](ShardablePopulation::into_row_shards) does not
    /// return an in-order, gapless partition of `0..user_count()` — a
    /// broken partition would otherwise mis-route buffer slices and
    /// corrupt records silently.
    pub fn new(ai: S, population: P, filter: F, delay: usize, shards: usize) -> Self {
        Self::with_budget(
            ai,
            population,
            filter,
            delay,
            shards,
            ThreadBudget::global(),
        )
    }

    /// [`Self::new`] leasing from an explicit budget instead of the
    /// global one. `shards == 0` resolves against **this** budget's
    /// currently available lanes, and any request is clamped to the
    /// population size (a shard needs at least one row).
    pub fn with_budget(
        ai: S,
        population: P,
        filter: F,
        delay: usize,
        shards: usize,
        budget: &'static ThreadBudget,
    ) -> Self {
        let shards = if shards == 0 {
            auto_shards_for(budget)
        } else {
            shards
        };
        let user_count = population.user_count();
        let shards = shards.min(user_count.max(1));
        let width = population.feature_width();
        let shards = population.into_row_shards(shards);
        let mut next = 0;
        for (s, shard) in shards.iter().enumerate() {
            let rows = shard.rows();
            assert_eq!(
                rows.start, next,
                "shard {s} starts at row {} but the partition is at row {next}",
                rows.start
            );
            next = rows.end;
        }
        assert_eq!(next, user_count, "shards must cover every row exactly once");
        ShardedRunner {
            ai,
            shards,
            filter,
            delay,
            policy: RecordPolicy::Full,
            budget,
            user_count,
            width,
            pending: VecDeque::new(),
            spare: Vec::new(),
            visible: FeatureMatrix::default(),
            signals: Vec::new(),
            actions: Vec::new(),
        }
    }

    /// The actual number of shards (≤ the requested count; capped by the
    /// user count).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured delay.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// The configured record policy.
    pub fn record_policy(&self) -> RecordPolicy {
        self.policy
    }

    /// Sets the record policy (see [`RecordPolicy`]).
    pub fn set_record_policy(&mut self, policy: RecordPolicy) {
        self.policy = policy;
    }

    /// Access to the AI system (e.g. to inspect the final model).
    pub fn ai(&self) -> &S {
        &self.ai
    }

    /// Mutable access to the AI system.
    pub fn ai_mut(&mut self) -> &mut S {
        &mut self.ai
    }

    /// Access to the filter.
    pub fn filter(&self) -> &F {
        &self.filter
    }

    /// Decomposes the runner back into its blocks, reassembling the
    /// population from its shards.
    pub fn into_parts(self) -> (S, P, F) {
        (self.ai, P::from_row_shards(self.shards), self.filter)
    }

    /// Runs `steps` passes of the loop, returning the telemetry selected
    /// by the record policy. Bit-identical to
    /// [`LoopRunner::run`](crate::closed_loop::LoopRunner::run) for
    /// blocks honouring the [`RowStreams`] contract, for any shard count.
    pub fn run(&mut self, steps: usize, rng: &mut SimRng) -> LoopRecord {
        self.run_with_sink(steps, rng, &mut ())
    }

    /// [`Self::run`] with a [`StepSink`] observing every step's raw
    /// telemetry. The sink runs at the sequential step barrier (after the
    /// filter, before retraining), so it sees the merged buffers in step
    /// order — identical to what the sequential runner's sink sees.
    ///
    /// Leases lanes from the runner's [`ThreadBudget`] and spins up one
    /// [`WorkerPool`] for the whole run; both are released when the run
    /// returns. To reuse a pool across several runs, drive
    /// [`Self::run_in_pool`] yourself.
    pub fn run_with_sink<K: StepSink + ?Sized>(
        &mut self,
        steps: usize,
        rng: &mut SimRng,
        sink: &mut K,
    ) -> LoopRecord {
        // One lease and one pool per run (not per step): the budget
        // grants what is free, down to the caller's own lane — in which
        // case the pool has zero workers and every sweep runs inline.
        let lease = self.budget.lease(self.shards.len());
        let mut pool = WorkerPool::new(lease.lanes() - 1);
        self.run_in_pool(steps, rng, sink, &mut pool)
    }

    /// [`Self::run_with_sink`] on a caller-managed [`WorkerPool`] (no
    /// budget lease is taken — the caller owns the pool's sizing). The
    /// pool only carries threads, never state, so one pool may drive any
    /// number of consecutive runs, of this runner or others, without
    /// affecting a single recorded bit.
    pub fn run_in_pool<K: StepSink + ?Sized>(
        &mut self,
        steps: usize,
        rng: &mut SimRng,
        sink: &mut K,
        pool: &mut WorkerPool,
    ) -> LoopRecord {
        let n = self.user_count;
        let w = self.width;
        let mut record = LoopRecord::with_policy(n, self.policy);
        record.reserve(steps);
        self.visible.reshape(n, w);
        self.signals.resize(n, 0.0);
        self.actions.resize(n, 0.0);
        let wants_checkpoints = sink.wants_checkpoints();
        let mut checkpoint = ModelCheckpoint::new();
        eqimpact_telemetry::progress::add_goal(steps as u64);

        for k in 0..steps {
            let observe = RowStreams::observe(rng, k);
            let respond = RowStreams::respond(rng, k);
            {
                let ai = &self.ai;
                // Budget-exhausted pools have no workers: skip the
                // submit/barrier machinery entirely and sweep inline —
                // the pooled runner then costs exactly the sequential
                // chunked sweep.
                let inline = pool.worker_count() == 0;
                // Peel each shard's disjoint sub-slice off every column
                // (and off the flat signal/action buffers): `take` +
                // `split_at_mut` hands each shard `rows.len()` elements
                // per column without unsafe aliasing.
                let mut vis_rest: Vec<&mut [f64]> = self.visible.col_slices_mut();
                let mut sig_rest = &mut self.signals[..];
                let mut act_rest = &mut self.actions[..];
                let mut jobs: Vec<PoolJob<'_>> =
                    Vec::with_capacity(if inline { 0 } else { self.shards.len() });
                let mut offset = 0;
                for shard in self.shards.iter_mut() {
                    let rows = shard.rows();
                    debug_assert_eq!(rows.start, offset, "shard rows moved after construction");
                    offset = rows.end;
                    let mut vis_cols: Vec<&mut [f64]> = Vec::with_capacity(w);
                    for slot in vis_rest.iter_mut() {
                        let (head, tail) = std::mem::take(slot).split_at_mut(rows.len());
                        vis_cols.push(head);
                        *slot = tail;
                    }
                    let cols = ColsMut::new(vis_cols, rows.clone());
                    let (sig, rest) = sig_rest.split_at_mut(rows.len());
                    sig_rest = rest;
                    let (act, rest) = act_rest.split_at_mut(rows.len());
                    act_rest = rest;
                    if inline {
                        sweep_shard(ai, shard, k, cols, sig, act, &observe, &respond);
                    } else {
                        let (observe, respond) = (&observe, &respond);
                        jobs.push(Box::new(move || {
                            sweep_shard(ai, shard, k, cols, sig, act, observe, respond)
                        }));
                    }
                }
                // Submit the step's sweep to the parked workers and wait
                // at the pool's barrier: every shard has finished (each
                // wrote only its disjoint slice) before the sequential
                // tail below reads the merged buffers.
                if !inline {
                    pool.run(jobs);
                }
            }

            // The step barrier: filter, record and retrain run on the
            // merged buffers, in the sequential runner's exact order.
            let mut feedback = self.spare.pop().unwrap_or_default();
            {
                let _phase = tm::LOOP_FILTER.enter();
                self.filter.apply_into(
                    k,
                    &self.visible,
                    &self.signals,
                    &self.actions,
                    &mut feedback,
                );
            }
            {
                let _phase = tm::LOOP_RECORD.enter();
                record.push_step(&self.signals, &self.actions, &feedback.per_user);
                sink.on_step(
                    k,
                    &self.visible,
                    &self.signals,
                    &self.actions,
                    &feedback.per_user,
                );
            }

            self.pending.push_back(feedback);
            if self.pending.len() > self.delay {
                let _phase = tm::LOOP_RETRAIN.enter();
                let due = self.pending.pop_front().expect("non-empty by check");
                self.ai.retrain(k, &due);
                self.spare.push(due);
                if wants_checkpoints {
                    checkpoint.reset(k);
                    if self.ai.checkpoint_into(&mut checkpoint) {
                        let _ = self.filter.checkpoint_into(&mut checkpoint);
                        sink.on_checkpoint(k, &checkpoint);
                    }
                }
            }
            tm::LOOP_STEPS.incr();
        }
        record
    }
}

/// One shard's slice of one step: observe → signal → respond over its own
/// rows. Each phase runs under its telemetry span, so in a sharded run
/// the `loop.observe/signal/respond` counts are `steps × shards` — still
/// deterministic for a fixed shard count.
#[allow(clippy::too_many_arguments)]
fn sweep_shard<S: ShardableAi, Sh: PopulationShard>(
    ai: &S,
    shard: &mut Sh,
    k: usize,
    mut cols: ColsMut<'_>,
    sig: &mut [f64],
    act: &mut [f64],
    observe: &RowStreams,
    respond: &RowStreams,
) {
    {
        let _phase = tm::LOOP_OBSERVE.enter();
        shard.observe_cols(k, observe, &mut cols);
    }
    {
        let _phase = tm::LOOP_SIGNAL.enter();
        ai.signals_batch(k, &cols.as_view(), sig);
    }
    {
        let _phase = tm::LOOP_RESPOND.enter();
        shard.respond_rows(k, sig, respond, act);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_loop::LoopBuilder;

    /// Shard-invariant synthetic population: every cell and action of row
    /// `i` comes from `streams.for_row(i)`.
    struct NoisyUsers {
        n: usize,
        width: usize,
    }

    struct NoisyShard {
        rows: Range<usize>,
        width: usize,
    }

    fn observe_noisy(k: usize, streams: &RowStreams, out: &mut ColsMut<'_>) {
        for (j, i) in out.rows().enumerate() {
            let mut r = streams.for_row(i);
            for c in 0..out.width() {
                out.col_mut(c)[j] = r.uniform() + k as f64;
            }
        }
    }

    fn respond_noisy(rows: Range<usize>, signals: &[f64], streams: &RowStreams, out: &mut [f64]) {
        for (j, i) in rows.enumerate() {
            let mut r = streams.for_row(i);
            out[j] = if r.bernoulli(0.3 + 0.1 * signals[j].clamp(0.0, 5.0)) {
                1.0
            } else {
                0.0
            };
        }
    }

    impl UserPopulation for NoisyUsers {
        fn user_count(&self) -> usize {
            self.n
        }
        fn observe_into(&mut self, k: usize, rng: &mut SimRng, out: &mut FeatureMatrix) {
            out.reshape(self.n, self.width);
            let streams = RowStreams::observe(rng, k);
            observe_noisy(k, &streams, &mut ColsMut::full(out));
        }
        fn respond_into(
            &mut self,
            k: usize,
            signals: &[f64],
            rng: &mut SimRng,
            out: &mut Vec<f64>,
        ) {
            out.clear();
            out.resize(self.n, 0.0);
            let streams = RowStreams::respond(rng, k);
            respond_noisy(0..self.n, signals, &streams, out);
        }
    }

    impl ShardablePopulation for NoisyUsers {
        type Shard = NoisyShard;
        fn feature_width(&self) -> usize {
            self.width
        }
        fn into_row_shards(self, parts: usize) -> Vec<NoisyShard> {
            shard_bounds(self.n, parts)
                .into_iter()
                .map(|rows| NoisyShard {
                    rows,
                    width: self.width,
                })
                .collect()
        }
        fn from_row_shards(shards: Vec<NoisyShard>) -> Self {
            let width = shards.first().map(|s| s.width).unwrap_or(0);
            let n = shards.last().map(|s| s.rows.end).unwrap_or(0);
            NoisyUsers { n, width }
        }
    }

    impl PopulationShard for NoisyShard {
        fn rows(&self) -> Range<usize> {
            self.rows.clone()
        }
        fn observe_cols(&mut self, k: usize, streams: &RowStreams, out: &mut ColsMut<'_>) {
            observe_noisy(k, streams, out);
        }
        fn respond_rows(
            &mut self,
            _k: usize,
            signals: &[f64],
            streams: &RowStreams,
            out: &mut [f64],
        ) {
            respond_noisy(self.rows.clone(), signals, streams, out);
        }
    }

    /// Level-tracking AI: signals are a pure per-row function of the
    /// features and the (barrier-updated) level.
    struct LevelAi {
        level: f64,
    }

    impl AiSystem for LevelAi {
        fn signals_into(&mut self, k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
            self.signals_full(k, visible, out);
        }
        fn retrain(&mut self, _k: usize, feedback: &Feedback) {
            self.level = feedback.aggregate;
        }
    }

    impl ShardableAi for LevelAi {
        fn signals_batch(&self, _k: usize, visible: &ColsView<'_>, out: &mut [f64]) {
            for (j, o) in out.iter_mut().enumerate() {
                let features: f64 = (0..visible.width()).map(|c| visible.col(c)[j]).sum();
                *o = self.level + 0.1 * features;
            }
        }
    }

    fn sequential_record(n: usize, width: usize, steps: usize, seed: u64) -> LoopRecord {
        let mut runner = LoopBuilder::new(LevelAi { level: 0.5 }, NoisyUsers { n, width })
            .delay(1)
            .build();
        runner.run(steps, &mut SimRng::new(seed))
    }

    fn sharded_record(
        n: usize,
        width: usize,
        steps: usize,
        seed: u64,
        shards: usize,
    ) -> LoopRecord {
        let mut runner = LoopBuilder::new(LevelAi { level: 0.5 }, NoisyUsers { n, width })
            .delay(1)
            .shards(shards)
            .build_sharded();
        runner.run(steps, &mut SimRng::new(seed))
    }

    #[test]
    fn shard_bounds_partition_contiguously() {
        assert_eq!(shard_bounds(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(shard_bounds(4, 8).len(), 4);
        assert_eq!(shard_bounds(0, 3), Vec::<Range<usize>>::new());
        assert_eq!(shard_bounds(6, 1), vec![0..6]);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn shard_bounds_reject_zero_parts() {
        shard_bounds(5, 0);
    }

    #[test]
    fn sharded_matches_sequential_for_any_shard_count() {
        let reference = sequential_record(23, 2, 12, 77);
        for shards in [1usize, 2, 3, 8, 23, 64] {
            let record = sharded_record(23, 2, 12, 77, shards);
            assert_eq!(record, reference, "shards = {shards}");
        }
    }

    #[test]
    fn zero_width_populations_shard_too() {
        let reference = sequential_record(9, 0, 6, 5);
        for shards in [1usize, 4] {
            assert_eq!(sharded_record(9, 0, 6, 5, shards), reference);
        }
    }

    #[test]
    fn auto_and_capped_shard_counts() {
        let runner = ShardedRunner::new(
            LevelAi { level: 0.0 },
            NoisyUsers { n: 5, width: 1 },
            crate::closed_loop::MeanFilter::default(),
            1,
            0,
        );
        assert!(runner.shard_count() >= 1);
        assert!(runner.shard_count() <= 5, "capped by the user count");
        assert_eq!(runner.delay(), 1);
    }

    #[test]
    fn into_parts_reassembles_the_population() {
        let mut runner = LoopBuilder::new(LevelAi { level: 0.1 }, NoisyUsers { n: 12, width: 1 })
            .shards(4)
            .build_sharded();
        runner.run(3, &mut SimRng::new(2));
        let (_ai, population, _filter) = runner.into_parts();
        assert_eq!(population.user_count(), 12);
        assert_eq!(population.feature_width(), 1);
    }

    #[test]
    fn col_views_address_globally() {
        let mut a = vec![0.0; 2];
        let mut b = vec![0.0; 2];
        let mut cols = ColsMut::new(vec![&mut a, &mut b], 3..5);
        assert_eq!(cols.rows(), 3..5);
        assert_eq!(cols.width(), 2);
        // Local index 1 of the second column is global row 4.
        cols.col_mut(1)[1] = 7.0;
        let (x, y) = cols.cols_pair_mut(1, 0);
        x[0] = 5.0;
        y[0] = 3.0;
        let view = cols.as_view();
        assert_eq!(view.rows(), 3..5);
        assert_eq!(view.col(0), &[3.0, 0.0]);
        assert_eq!(view.col(1), &[5.0, 7.0]);
        assert_eq!(view.cols().len(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn col_view_checks_lengths() {
        let data = vec![0.0; 2];
        ColsView::new(vec![&data], 3..4);
    }

    #[test]
    fn auto_shards_resolve_against_the_budget() {
        let budget = ThreadBudget::leaked(3);
        let runner = ShardedRunner::with_budget(
            LevelAi { level: 0.0 },
            NoisyUsers { n: 50, width: 1 },
            crate::closed_loop::MeanFilter::default(),
            1,
            0,
            budget,
        );
        assert_eq!(runner.shard_count(), 3, "auto = the budget's lanes");

        // With two of the three lanes leased away, auto resolves to what
        // is actually attainable.
        let lease = budget.lease(3);
        assert_eq!(lease.lanes(), 3);
        let nested = ShardedRunner::with_budget(
            LevelAi { level: 0.0 },
            NoisyUsers { n: 50, width: 1 },
            crate::closed_loop::MeanFilter::default(),
            1,
            0,
            budget,
        );
        assert_eq!(nested.shard_count(), 1, "budget exhausted: sequential");
    }

    #[test]
    fn shard_requests_clamp_to_the_population() {
        // More shards than users: one shard per user, no empty shards,
        // and the record still matches the sequential reference.
        let runner = ShardedRunner::new(
            LevelAi { level: 0.0 },
            NoisyUsers { n: 3, width: 2 },
            crate::closed_loop::MeanFilter::default(),
            1,
            64,
        );
        assert_eq!(runner.shard_count(), 3);
        assert!(runner.shards.iter().all(|s| !s.rows().is_empty()));
        let reference = sequential_record(3, 2, 7, 19);
        assert_eq!(sharded_record(3, 2, 7, 19, 64), reference);
    }

    #[test]
    fn exhausted_budget_runs_match_the_sequential_reference() {
        // Every lane leased away: the pooled run degrades to an inline
        // sweep and must not change a single recorded bit.
        let budget = ThreadBudget::leaked(1);
        let reference = sequential_record(17, 2, 9, 123);
        let mut runner = ShardedRunner::with_budget(
            LevelAi { level: 0.5 },
            NoisyUsers { n: 17, width: 2 },
            crate::closed_loop::MeanFilter::default(),
            1,
            4,
            budget,
        );
        assert_eq!(runner.shard_count(), 4, "shards are a layout, not lanes");
        let record = runner.run(9, &mut SimRng::new(123));
        assert_eq!(record, reference);
    }

    #[test]
    fn one_pool_drives_consecutive_runs_bit_identically() {
        // Satellite: pool reuse. One worker pool drives two consecutive
        // runs (fresh runner, then the same runner re-run); each record
        // must be bit-identical to a fresh sequential run.
        let mut pool = WorkerPool::new(2);
        let make = || {
            LoopBuilder::new(LevelAi { level: 0.5 }, NoisyUsers { n: 23, width: 2 })
                .delay(1)
                .shards(5)
                .build_sharded()
        };
        let mut first = make();
        let a = first.run_in_pool(12, &mut SimRng::new(77), &mut (), &mut pool);
        assert_eq!(a, sequential_record(23, 2, 12, 77), "first pooled run");

        let mut second = make();
        let b = second.run_in_pool(12, &mut SimRng::new(909), &mut (), &mut pool);
        assert_eq!(b, sequential_record(23, 2, 12, 909), "second pooled run");

        // A third run through the same (now well-used) pool: a fresh
        // runner with the second seed reproduces the second record — the
        // pool carries threads, never state.
        let c = make().run_in_pool(12, &mut SimRng::new(909), &mut (), &mut pool);
        assert_eq!(c, b, "same pool, fresh runner, same seed");
        assert!(!pool.is_poisoned());
    }

    /// Concurrency probe: counts how many sweeps are live at once.
    #[derive(Default)]
    struct Probe {
        active: std::sync::atomic::AtomicUsize,
        peak: std::sync::atomic::AtomicUsize,
    }

    impl Probe {
        fn enter(&self) {
            use std::sync::atomic::Ordering::SeqCst;
            let now = self.active.fetch_add(1, SeqCst) + 1;
            self.peak.fetch_max(now, SeqCst);
        }
        fn exit(&self) {
            self.active
                .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
        }
    }

    struct ProbedUsers {
        n: usize,
        probe: std::sync::Arc<Probe>,
    }

    struct ProbedShard {
        rows: Range<usize>,
        probe: std::sync::Arc<Probe>,
    }

    impl UserPopulation for ProbedUsers {
        fn user_count(&self) -> usize {
            self.n
        }
        fn observe_into(&mut self, _k: usize, _rng: &mut SimRng, out: &mut FeatureMatrix) {
            out.reshape(self.n, 1);
        }
        fn respond_into(
            &mut self,
            _k: usize,
            signals: &[f64],
            _rng: &mut SimRng,
            out: &mut Vec<f64>,
        ) {
            out.clear();
            out.extend_from_slice(signals);
        }
    }

    impl ShardablePopulation for ProbedUsers {
        type Shard = ProbedShard;
        fn feature_width(&self) -> usize {
            1
        }
        fn into_row_shards(self, parts: usize) -> Vec<ProbedShard> {
            shard_bounds(self.n, parts)
                .into_iter()
                .map(|rows| ProbedShard {
                    rows,
                    probe: self.probe.clone(),
                })
                .collect()
        }
        fn from_row_shards(shards: Vec<ProbedShard>) -> Self {
            let n = shards.last().map(|s| s.rows.end).unwrap_or(0);
            let probe = shards.first().map(|s| s.probe.clone()).unwrap_or_default();
            ProbedUsers { n, probe }
        }
    }

    impl PopulationShard for ProbedShard {
        fn rows(&self) -> Range<usize> {
            self.rows.clone()
        }
        fn observe_cols(&mut self, k: usize, _streams: &RowStreams, out: &mut ColsMut<'_>) {
            self.probe.enter();
            // Hold the sweep open long enough for overlapping trials
            // and shards to be observable.
            std::thread::sleep(std::time::Duration::from_micros(300));
            for (j, i) in out.rows().enumerate() {
                out.col_mut(0)[j] = (i + k) as f64;
            }
            self.probe.exit();
        }
        fn respond_rows(
            &mut self,
            _k: usize,
            signals: &[f64],
            _streams: &RowStreams,
            out: &mut [f64],
        ) {
            out.copy_from_slice(signals);
        }
    }

    #[test]
    fn trials_times_shards_never_exceed_the_budget() {
        // The oversubscription regression: 4 trials x 4 shards on a
        // simulated 2-core budget must never run more than 2 sweeps
        // concurrently — the trial stripes take the whole budget and the
        // nested sharded runs degrade to their own lane.
        use crate::trials::run_trials_with_budget;
        let budget = ThreadBudget::leaked(2);
        let probe = std::sync::Arc::new(Probe::default());
        let records = run_trials_with_budget(budget, 4, |t| {
            let mut runner = ShardedRunner::with_budget(
                LevelAi { level: 0.0 },
                ProbedUsers {
                    n: 8,
                    probe: probe.clone(),
                },
                crate::closed_loop::MeanFilter::default(),
                1,
                4,
                budget,
            );
            runner.run(6, &mut SimRng::new(t as u64))
        });
        assert_eq!(records.len(), 4);
        let peak = probe.peak.load(std::sync::atomic::Ordering::SeqCst);
        assert!(peak >= 1, "the probe must have seen the sweeps");
        assert!(
            peak <= 2,
            "peak of {peak} concurrent sweeps exceeds the 2-lane budget"
        );
        assert_eq!(budget.available_lanes(), 2, "all leases returned");
    }
}
