//! Columnar (struct-of-arrays) feature storage for the loop's hot path.
//!
//! The paper's protocol (N = 1000, 5 trials) tolerates a `Vec<Vec<f64>>`
//! per step; a production-scale loop serving millions of simulated users
//! does not. [`FeatureMatrix`] stores each feature as one contiguous
//! column buffer so a step's observation can be rewritten in place with
//! zero allocation, batched scoring kernels stream each column linearly
//! (the autovectorizer's favourite shape), and the layout matches the
//! EQTRACE1 trace codec exactly — recording a step is a per-column
//! near-memcpy instead of a strided gather.
//!
//! Row-oriented access survives as a migration shim: [`FeatureMatrix::get`]
//! reads one cell, [`FeatureMatrix::copy_row_into`] gathers a row, and
//! [`FeatureMatrix::push_row`] appends one. Hot paths should write columns
//! in place via [`FeatureMatrix::col_mut`] / [`FeatureMatrix::cols_pair_mut`]
//! and score through the batched kernels instead.

/// A dense column-major matrix of per-user features: `width` columns of
/// `row_count` values each, one flat buffer per column.
///
/// `width == 0` is a valid shape (populations with no visible features);
/// the row count is tracked independently of the column buffers so empty
/// rows still count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureMatrix {
    cols: Vec<Vec<f64>>,
    rows: usize,
}

impl FeatureMatrix {
    /// Creates an empty matrix of the given row width.
    pub fn new(width: usize) -> Self {
        FeatureMatrix {
            cols: (0..width).map(|_| Vec::new()).collect(),
            rows: 0,
        }
    }

    /// Creates an empty matrix with capacity for `rows` rows of `width`.
    pub fn with_capacity(rows: usize, width: usize) -> Self {
        FeatureMatrix {
            cols: (0..width).map(|_| Vec::with_capacity(rows)).collect(),
            rows: 0,
        }
    }

    /// Creates a `rows x width` matrix of zeros.
    pub fn zeros(rows: usize, width: usize) -> Self {
        FeatureMatrix {
            cols: (0..width).map(|_| vec![0.0; rows]).collect(),
            rows,
        }
    }

    /// Builds a matrix from nested rows — a **test-only convenience**:
    /// it transposes row by row, so hot paths must write columns in
    /// place ([`Self::col_mut`]) instead.
    ///
    /// # Panics
    /// Panics when rows have unequal lengths.
    pub fn from_nested(rows: &[Vec<f64>]) -> Self {
        let width = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut m = FeatureMatrix::with_capacity(rows.len(), width);
        for row in rows {
            m.push_row(row);
        }
        m
    }

    /// Row width (features per user).
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows (users).
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column `j` as a contiguous slice of `row_count()` values.
    ///
    /// # Panics
    /// Panics when `j >= width()`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(
            j < self.cols.len(),
            "col {j} out of {} cols",
            self.cols.len()
        );
        &self.cols[j]
    }

    /// Mutable column `j`.
    ///
    /// # Panics
    /// Panics when `j >= width()`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(
            j < self.cols.len(),
            "col {j} out of {} cols",
            self.cols.len()
        );
        &mut self.cols[j]
    }

    /// Two distinct columns, both mutable — the shape of the credit and
    /// hiring observe sweeps, which write a code column and a raw-value
    /// column per row.
    ///
    /// # Panics
    /// Panics when `a == b` or either index is out of range.
    pub fn cols_pair_mut(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        assert!(a != b, "cols_pair_mut: columns must be distinct");
        assert!(
            a < self.cols.len() && b < self.cols.len(),
            "cols_pair_mut: ({a}, {b}) out of {} cols",
            self.cols.len()
        );
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.cols.split_at_mut(hi);
        let (x, y) = (&mut head[lo][..], &mut tail[0][..]);
        if a < b {
            (x, y)
        } else {
            (y, x)
        }
    }

    /// All columns as shared slices, in order (the batched-kernel view).
    pub fn col_slices(&self) -> Vec<&[f64]> {
        self.cols.iter().map(|c| c.as_slice()).collect()
    }

    /// All columns as mutable slices, in order.
    pub fn col_slices_mut(&mut self) -> Vec<&mut [f64]> {
        self.cols.iter_mut().map(|c| c.as_mut_slice()).collect()
    }

    /// Cell `(i, j)` — the row-view migration shim for scalar reads.
    ///
    /// # Panics
    /// Panics when `i >= row_count()` or `j >= width()`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows, "row {i} out of {} rows", self.rows);
        self.col(j)[i]
    }

    /// Writes cell `(i, j)`.
    ///
    /// # Panics
    /// Panics when `i >= row_count()` or `j >= width()`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows, "row {i} out of {} rows", self.rows);
        self.col_mut(j)[i] = v;
    }

    /// Gathers row `i` into `out` (cleared first) — the row-view
    /// migration shim for callers that still need a whole row.
    ///
    /// # Panics
    /// Panics when `i >= row_count()`.
    pub fn copy_row_into(&self, i: usize, out: &mut Vec<f64>) {
        assert!(i < self.rows, "row {i} out of {} rows", self.rows);
        out.clear();
        out.extend(self.cols.iter().map(|c| c[i]));
    }

    /// Appends one row (an O(width) scatter; fine off the hot path).
    ///
    /// # Panics
    /// Panics when `row.len() != width()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols.len(), "push_row: width mismatch");
        for (col, &v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
        self.rows += 1;
    }

    /// Drops all rows, keeping the width and the allocations.
    pub fn clear(&mut self) {
        for col in &mut self.cols {
            col.clear();
        }
        self.rows = 0;
    }

    /// Reshapes in place to `rows x width`, zero-filling and reusing the
    /// existing allocations where possible.
    pub fn reset(&mut self, rows: usize, width: usize) {
        self.cols.resize_with(width, Vec::new);
        self.rows = rows;
        for col in &mut self.cols {
            col.clear();
            col.resize(rows, 0.0);
        }
    }

    /// Reshapes in place to `rows x width` **without** zeroing retained
    /// cells — contents are unspecified (stale values or zeros) until
    /// written. The hot-path variant of [`Self::reset`] for callers that
    /// overwrite every cell anyway: in steady state (same shape each
    /// step) it touches no memory at all.
    pub fn reshape(&mut self, rows: usize, width: usize) {
        self.cols.resize_with(width, Vec::new);
        self.rows = rows;
        for col in &mut self.cols {
            col.resize(rows, 0.0);
        }
    }

    /// Becomes a copy of `other`, reusing this matrix's allocations.
    pub fn fill_from(&mut self, other: &FeatureMatrix) {
        self.cols.resize_with(other.cols.len(), Vec::new);
        self.rows = other.rows;
        for (dst, src) in self.cols.iter_mut().zip(&other.cols) {
            dst.clear();
            dst.extend_from_slice(src);
        }
    }

    /// The rows as nested vectors (tests / interop; allocates).
    pub fn to_nested(&self) -> Vec<Vec<f64>> {
        (0..self.rows)
            .map(|i| self.cols.iter().map(|c| c[i]).collect())
            .collect()
    }

    /// The cells flattened row-major (interop / JSON dumps; allocates).
    pub fn to_row_major(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rows * self.cols.len());
        for i in 0..self.rows {
            out.extend(self.cols.iter().map(|c| c[i]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut m = FeatureMatrix::new(2);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.row_count(), 2);
        assert_eq!(m.width(), 2);
        assert_eq!(m.col(0), &[1.0, 3.0]);
        assert_eq!(m.col(1), &[2.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.to_row_major(), vec![1.0, 2.0, 3.0, 4.0]);
        let mut row = Vec::new();
        m.copy_row_into(1, &mut row);
        assert_eq!(row, vec![3.0, 4.0]);
    }

    #[test]
    fn empty_width_counts_rows() {
        let mut m = FeatureMatrix::new(0);
        m.push_row(&[]);
        m.push_row(&[]);
        assert_eq!(m.row_count(), 2);
        assert_eq!(m.width(), 0);
        let mut row = vec![9.0];
        m.copy_row_into(1, &mut row);
        assert_eq!(row, Vec::<f64>::new());
    }

    #[test]
    fn fill_from_copies_and_reuses() {
        let src = FeatureMatrix::from_nested(&[vec![1.0], vec![2.0]]);
        let mut dst = FeatureMatrix::zeros(5, 3);
        let capacity_before = dst.cols[0].capacity();
        dst.fill_from(&src);
        assert_eq!(dst, src);
        assert!(dst.cols[0].capacity() >= capacity_before, "allocation kept");
    }

    #[test]
    fn reset_reshapes_and_zeroes() {
        let mut m = FeatureMatrix::from_nested(&[vec![1.0, 2.0]]);
        m.reset(3, 1);
        assert_eq!(m.row_count(), 3);
        assert_eq!(m.width(), 1);
        assert_eq!(m.col(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn reshape_keeps_contents_unspecified_but_sized() {
        let mut m = FeatureMatrix::from_nested(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.reshape(2, 2);
        assert_eq!(m.row_count(), 2);
        // Growing zero-fills only the new tail cells.
        m.reshape(3, 2);
        assert_eq!(m.get(2, 0), 0.0);
        assert_eq!(m.get(2, 1), 0.0);
        assert_eq!(m.col(0).len(), 3);
    }

    #[test]
    fn col_mut_writes_through() {
        let mut m = FeatureMatrix::zeros(2, 2);
        m.col_mut(0)[1] = 7.0;
        m.set(1, 1, 9.0);
        assert_eq!(m.get(1, 0), 7.0);
        assert_eq!(m.get(1, 1), 9.0);
    }

    #[test]
    fn cols_pair_mut_is_order_aware() {
        let mut m = FeatureMatrix::zeros(2, 3);
        let (a, b) = m.cols_pair_mut(2, 0);
        a[0] = 5.0;
        b[1] = 6.0;
        assert_eq!(m.col(2), &[5.0, 0.0]);
        assert_eq!(m.col(0), &[0.0, 6.0]);
    }

    #[test]
    fn nested_roundtrip() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(FeatureMatrix::from_nested(&rows).to_nested(), rows);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn push_row_checks_width() {
        FeatureMatrix::new(2).push_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn cell_bounds_checked() {
        let m = FeatureMatrix::zeros(1, 1);
        m.get(1, 0);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn cols_pair_mut_rejects_same_column() {
        let mut m = FeatureMatrix::zeros(1, 2);
        m.cols_pair_mut(1, 1);
    }
}
