//! Flat, row-major feature storage for the loop's hot path.
//!
//! The paper's protocol (N = 1000, 5 trials) tolerates a `Vec<Vec<f64>>`
//! per step; a production-scale loop serving millions of simulated users
//! does not. [`FeatureMatrix`] stores all per-user feature rows in one
//! contiguous `Vec<f64>` so a step's observation can be rewritten in place
//! with zero allocation, rows are cache-friendly to scan, and the layout
//! is ready for future batching/SIMD passes.

/// A dense row-major matrix of per-user features: `row_count` rows of
/// `width` features each, in one flat buffer.
///
/// `width == 0` is a valid shape (populations with no visible features);
/// the row count is tracked independently of the buffer length so empty
/// rows still count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    width: usize,
    rows: usize,
}

impl FeatureMatrix {
    /// Creates an empty matrix of the given row width.
    pub fn new(width: usize) -> Self {
        FeatureMatrix {
            data: Vec::new(),
            width,
            rows: 0,
        }
    }

    /// Creates an empty matrix with capacity for `rows` rows of `width`.
    pub fn with_capacity(rows: usize, width: usize) -> Self {
        FeatureMatrix {
            data: Vec::with_capacity(rows * width),
            width,
            rows: 0,
        }
    }

    /// Creates a `rows x width` matrix of zeros.
    pub fn zeros(rows: usize, width: usize) -> Self {
        FeatureMatrix {
            data: vec![0.0; rows * width],
            width,
            rows,
        }
    }

    /// Builds a matrix from nested rows (a migration convenience).
    ///
    /// # Panics
    /// Panics when rows have unequal lengths.
    pub fn from_nested(rows: &[Vec<f64>]) -> Self {
        let width = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut m = FeatureMatrix::with_capacity(rows.len(), width);
        for row in rows {
            m.push_row(row);
        }
        m
    }

    /// Row width (features per user).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows (users).
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// Panics when `i >= row_count()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of {} rows", self.rows);
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Mutable row `i`.
    ///
    /// # Panics
    /// Panics when `i >= row_count()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of {} rows", self.rows);
        &mut self.data[i * self.width..(i + 1) * self.width]
    }

    /// Iterates over all rows in order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + Clone {
        // `chunks_exact(0)` panics, so empty-width rows iterate explicitly.
        RowIter {
            matrix: self,
            next: 0,
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics when `row.len() != width()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.width, "push_row: width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Drops all rows, keeping the width and the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
        self.rows = 0;
    }

    /// Reshapes in place to `rows x width`, zero-filling and reusing the
    /// existing allocation where possible.
    pub fn reset(&mut self, rows: usize, width: usize) {
        self.width = width;
        self.rows = rows;
        self.data.clear();
        self.data.resize(rows * width, 0.0);
    }

    /// Reshapes in place to `rows x width` **without** zeroing retained
    /// cells — contents are unspecified (stale values or zeros) until
    /// written. The hot-path variant of [`Self::reset`] for callers that
    /// overwrite every cell anyway: in steady state (same shape each
    /// step) it touches no memory at all.
    pub fn reshape(&mut self, rows: usize, width: usize) {
        self.width = width;
        self.rows = rows;
        self.data.resize(rows * width, 0.0);
    }

    /// Becomes a copy of `other`, reusing this matrix's allocation.
    pub fn fill_from(&mut self, other: &FeatureMatrix) {
        self.width = other.width;
        self.rows = other.rows;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The flat row-major buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The rows as nested vectors (tests / interop; allocates).
    pub fn to_nested(&self) -> Vec<Vec<f64>> {
        self.rows().map(|r| r.to_vec()).collect()
    }
}

/// Iterator over the rows of a [`FeatureMatrix`].
#[derive(Debug, Clone)]
struct RowIter<'a> {
    matrix: &'a FeatureMatrix,
    next: usize,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = &'a [f64];

    fn next(&mut self) -> Option<&'a [f64]> {
        if self.next >= self.matrix.rows {
            return None;
        }
        let row = self.matrix.row(self.next);
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.matrix.rows - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for RowIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut m = FeatureMatrix::new(2);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.row_count(), 2);
        assert_eq!(m.width(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let rows: Vec<&[f64]> = m.rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn empty_width_counts_rows() {
        let mut m = FeatureMatrix::new(0);
        m.push_row(&[]);
        m.push_row(&[]);
        assert_eq!(m.row_count(), 2);
        assert_eq!(m.width(), 0);
        assert_eq!(m.row(1), &[] as &[f64]);
        assert_eq!(m.rows().len(), 2);
        assert_eq!(m.rows().count(), 2);
    }

    #[test]
    fn fill_from_copies_and_reuses() {
        let src = FeatureMatrix::from_nested(&[vec![1.0], vec![2.0]]);
        let mut dst = FeatureMatrix::zeros(5, 3);
        let capacity_before = dst.data.capacity();
        dst.fill_from(&src);
        assert_eq!(dst, src);
        assert!(dst.data.capacity() >= capacity_before, "allocation kept");
    }

    #[test]
    fn reset_reshapes_and_zeroes() {
        let mut m = FeatureMatrix::from_nested(&[vec![1.0, 2.0]]);
        m.reset(3, 1);
        assert_eq!(m.row_count(), 3);
        assert_eq!(m.width(), 1);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn reshape_keeps_contents_unspecified_but_sized() {
        let mut m = FeatureMatrix::from_nested(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.reshape(2, 2);
        assert_eq!(m.row_count(), 2);
        // Growing zero-fills only the new tail cells.
        m.reshape(3, 2);
        assert_eq!(m.row(2), &[0.0, 0.0]);
        assert_eq!(m.as_slice().len(), 6);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = FeatureMatrix::zeros(2, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.row(1), &[7.0, 0.0]);
    }

    #[test]
    fn nested_roundtrip() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(FeatureMatrix::from_nested(&rows).to_nested(), rows);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn push_row_checks_width() {
        FeatureMatrix::new(2).push_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn row_bounds_checked() {
        let m = FeatureMatrix::zeros(1, 1);
        m.row(1);
    }
}
