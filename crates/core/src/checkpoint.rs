//! Model checkpoints: the AI system's learned state, captured at a
//! retrain boundary.
//!
//! A [`ModelCheckpoint`] is a small bag of named `f64` columns — enough
//! to carry logistic weights, per-user memory (previous ADRs, exclusion
//! flags) and filter state without committing the core crate to any
//! concrete learner. The [`AiSystem`](crate::closed_loop::AiSystem) and
//! [`FeedbackFilter`](crate::closed_loop::FeedbackFilter) traits expose
//! defaulted `checkpoint_into` / `restore_checkpoint` hooks over it, and
//! the loop runners emit one checkpoint per retrain to any
//! [`StepSink`](crate::recorder::StepSink) that asks for them
//! ([`StepSink::wants_checkpoints`](crate::recorder::StepSink::wants_checkpoints)).
//!
//! Checkpointed replay skips training entirely: a replayer that finds a
//! checkpoint at a retrain boundary restores it instead of calling
//! `retrain`, which turns the dominant cost of replaying a learning
//! policy (refitting on an ever-growing training set) into a copy of the
//! final weights.
//!
//! # Field naming
//!
//! Fields live in one flat namespace per checkpoint. By convention AI
//! systems use bare names (`prev_adr`, `model.intercept`) and feedback
//! filters prefix theirs with `filter.` — the runner captures both into
//! the same checkpoint, so the two implementors of a loop must not
//! collide.
//!
//! Counters and flags travel as `f64` too: every count a loop can
//! produce (bounded by `steps × users`) is far below 2^53, so the
//! round-trip is exact.

/// A named-column snapshot of learned state at one retrain boundary.
///
/// Buffers are recycled: [`Self::reset`] keeps every column's allocation
/// for the next capture, so per-retrain emission is allocation-free in
/// steady state.
#[derive(Debug, Clone, Default)]
pub struct ModelCheckpoint {
    /// The step whose retrain this checkpoint captures (the `k` passed
    /// to `retrain`).
    pub step: usize,
    fields: Vec<(String, Vec<f64>)>,
    live: usize,
}

impl ModelCheckpoint {
    /// An empty checkpoint.
    pub fn new() -> Self {
        ModelCheckpoint::default()
    }

    /// Clears the checkpoint for a new capture at `step`, keeping the
    /// column allocations.
    pub fn reset(&mut self, step: usize) {
        self.step = step;
        self.live = 0;
    }

    /// Number of fields captured.
    pub fn field_count(&self) -> usize {
        self.live
    }

    /// Starts a new field and returns its (empty) column buffer.
    pub fn field_mut(&mut self, name: &str) -> &mut Vec<f64> {
        if self.live == self.fields.len() {
            self.fields.push((String::new(), Vec::new()));
        }
        let (slot_name, values) = &mut self.fields[self.live];
        slot_name.clear();
        slot_name.push_str(name);
        values.clear();
        self.live += 1;
        values
    }

    /// Captures a whole column under `name`.
    pub fn push_field(&mut self, name: &str, values: &[f64]) {
        self.field_mut(name).extend_from_slice(values);
    }

    /// Captures a single value under `name`.
    pub fn push_scalar(&mut self, name: &str, value: f64) {
        self.field_mut(name).push(value);
    }

    /// The column captured under `name`, if any.
    pub fn field(&self, name: &str) -> Option<&[f64]> {
        self.fields[..self.live]
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// The single value captured under `name`, if the field exists and
    /// holds exactly one value.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        match self.field(name) {
            Some([v]) => Some(*v),
            _ => None,
        }
    }

    /// Iterates the captured `(name, column)` pairs in capture order.
    pub fn fields(&self) -> impl Iterator<Item = (&str, &[f64])> {
        self.fields[..self.live]
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_capture_and_read_back() {
        let mut cp = ModelCheckpoint::new();
        cp.reset(4);
        cp.push_field("weights", &[0.5, -1.25]);
        cp.push_scalar("intercept", 2.0);
        assert_eq!(cp.step, 4);
        assert_eq!(cp.field_count(), 2);
        assert_eq!(cp.field("weights"), Some(&[0.5, -1.25][..]));
        assert_eq!(cp.scalar("intercept"), Some(2.0));
        assert_eq!(cp.scalar("weights"), None, "multi-value field");
        assert_eq!(cp.field("missing"), None);
        let names: Vec<&str> = cp.fields().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["weights", "intercept"]);
    }

    #[test]
    fn reset_recycles_buffers_and_hides_stale_fields() {
        let mut cp = ModelCheckpoint::new();
        cp.reset(0);
        cp.push_field("a", &[1.0]);
        cp.push_field("b", &[2.0, 3.0]);
        cp.reset(1);
        cp.push_field("c", &[9.0]);
        assert_eq!(cp.field_count(), 1);
        assert_eq!(cp.field("a"), None, "stale field visible after reset");
        assert_eq!(cp.field("b"), None);
        assert_eq!(cp.field("c"), Some(&[9.0][..]));
    }
}
