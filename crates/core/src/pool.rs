//! The process-wide **thread budget** and the persistent **worker pool**
//! behind every parallel axis of the workspace.
//!
//! Two problems motivated this module. First, the sharded runner used to
//! spawn `shards − 1` scoped threads **every step**, so a
//! 50-step × 8-shard run paid 350 thread spawns — measurable per-step
//! overhead that turned small-host sharding into a slowdown. Second, the
//! trial striper and the sharded runner each claimed
//! `available_parallelism()` independently, so `trials × shards` could
//! oversubscribe the host by an order of magnitude. Both are fixed here:
//!
//! * [`ThreadBudget`] — a single, process-wide ledger of *lanes*
//!   (concurrently executing threads). Every parallel region
//!   ([`run_trials_with`](crate::trials::run_trials_with), a
//!   [`ShardedRunner`](crate::shard::ShardedRunner) run) **leases** the
//!   lanes it wants and gets at most what is free, so nested parallelism
//!   composes instead of multiplying: trials striped over the whole
//!   budget leave nothing for intra-trial shards, which then degrade to
//!   sequential sweeps on their own lane rather than thrashing the
//!   scheduler.
//! * [`WorkerPool`] — long-lived, parked worker threads driven by a
//!   **submit/barrier protocol**: [`WorkerPool::run`] submits one batch
//!   of borrowed jobs (each worker has its own job channel; parked
//!   workers wake on `recv`), runs the caller's stripe on the calling
//!   thread, and returns only when **every** job of the batch has
//!   completed — the barrier. A run therefore costs one pool
//!   (`lanes − 1` spawns) instead of `steps × (shards − 1)` spawns.
//!
//! # The lease hierarchy
//!
//! Every execution context implicitly owns **one** lane — the thread it
//! is already running on. [`ThreadBudget::lease`] thus always grants at
//! least one lane and draws only the *extra* lanes from the shared
//! ledger; dropping the [`BudgetLease`] returns them. The accounting
//! composes top-down:
//!
//! ```text
//! main thread                               1 implicit lane
//! └─ run_trials_with(5 trials)              leases 5 → gets min(5, budget)
//!    └─ trial worker (1 leased lane each)
//!       └─ ShardedRunner::run(8 shards)     leases 8 → gets what's left
//!          └─ WorkerPool(lanes − 1 workers)
//! ```
//!
//! On an idle 8-core host a lone 8-shard run gets all 8 lanes; the same
//! run under a 5-trial stripe gets 1 lane and runs its shards
//! sequentially — total live threads never exceed the budget.
//!
//! The budget defaults to `available_parallelism()` and can be capped
//! with the `EQIMPACT_THREADS` environment variable or
//! [`ThreadBudget::init_global`] (the `experiments` CLI's `--threads`
//! flag), e.g. to leave cores free for a co-located service.
//!
//! # The submit/barrier protocol
//!
//! [`WorkerPool::run`] takes a batch of `FnOnce` jobs that may **borrow**
//! the caller's stack (the sharded runner's jobs borrow the AI system and
//! disjoint buffer slices). Jobs are striped round-robin over the lanes
//! (workers first, the last stripe runs on the calling thread), and the
//! call blocks until a completion message has arrived for every submitted
//! job. A panicking job never deadlocks the barrier: workers catch the
//! unwind and report it as that job's completion; `run` finishes the
//! barrier, **poisons** the pool (later `run` calls fail fast — the
//! caller's data may be half-written) and re-raises the first panic.

use eqimpact_telemetry::metrics as tm;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::OnceLock;
use std::thread::JoinHandle;
use std::time::Instant;

/// A job submitted to a [`WorkerPool`] batch: it may borrow anything that
/// outlives the [`WorkerPool::run`] call that executes it.
pub type PoolJob<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// The process-wide ledger of concurrency *lanes* (see the module docs).
///
/// A lane is one concurrently executing thread. The budget starts with
/// `capacity − 1` free lanes — the missing one is the implicit lane of
/// the thread that will call [`Self::lease`] (every caller is already
/// running on *some* thread, which no ledger can hand out twice).
#[derive(Debug)]
pub struct ThreadBudget {
    capacity: usize,
    free: AtomicUsize,
}

static GLOBAL: OnceLock<ThreadBudget> = OnceLock::new();

impl ThreadBudget {
    /// A budget of `capacity` total lanes (clamped to at least 1, the
    /// caller's own lane).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ThreadBudget {
            capacity,
            free: AtomicUsize::new(capacity - 1),
        }
    }

    /// The process-wide budget every runner leases from by default.
    ///
    /// First use fixes the capacity: the `EQIMPACT_THREADS` environment
    /// variable if set (and a positive integer), otherwise
    /// `available_parallelism()`. Cap it programmatically with
    /// [`Self::init_global`] *before* anything leases.
    pub fn global() -> &'static ThreadBudget {
        GLOBAL.get_or_init(|| ThreadBudget::new(default_capacity()))
    }

    /// Initializes the global budget with an explicit capacity (the
    /// `experiments --threads N` path). Returns the budget if the global
    /// capacity is `capacity` (whether this call set it or it was already
    /// so), or `Err(existing)` when the budget was already fixed at a
    /// different capacity by an earlier use.
    pub fn init_global(capacity: usize) -> Result<&'static ThreadBudget, usize> {
        let budget = GLOBAL.get_or_init(|| ThreadBudget::new(capacity));
        if budget.capacity == capacity.max(1) {
            Ok(budget)
        } else {
            Err(budget.capacity)
        }
    }

    /// A leaked, `'static` budget — for tests and benches that need an
    /// isolated budget with the same `'static` lifetime as the global
    /// one (e.g. to simulate a 2-core host on any machine).
    pub fn leaked(capacity: usize) -> &'static ThreadBudget {
        Box::leak(Box::new(ThreadBudget::new(capacity)))
    }

    /// Total lanes this budget manages (fixed at construction).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The lanes a [`Self::lease`] issued right now could get: the
    /// caller's implicit lane plus whatever is currently free.
    pub fn available_lanes(&self) -> usize {
        1 + self.free.load(Ordering::Acquire)
    }

    /// Leases up to `lanes` lanes: the caller's implicit lane (always
    /// granted) plus at most `lanes − 1` extra lanes from the free pool.
    /// Never blocks — when the budget is exhausted the lease holds a
    /// single lane and the parallel region runs sequentially. Dropping
    /// the lease returns the extra lanes.
    pub fn lease(&self, lanes: usize) -> BudgetLease<'_> {
        let want = lanes.max(1) - 1;
        let mut granted = 0;
        // fetch_update retries the closure on contention; `granted` is
        // recomputed every attempt, so the final value matches the CAS
        // that succeeded.
        let _ = self
            .free
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |free| {
                granted = want.min(free);
                Some(free - granted)
            });
        // The lease remembers whether its grant was metered, so the
        // busy-lanes gauge never sees a `sub` without its `add` when the
        // recorder toggles mid-lease.
        let metered = eqimpact_telemetry::enabled();
        if metered {
            tm::POOL_LEASES.incr();
            tm::POOL_LANES_REQUESTED.add(lanes.max(1) as u64);
            tm::POOL_LANES_GRANTED.add(granted as u64 + 1);
            if granted < want {
                tm::POOL_LEASES_CLAMPED.incr();
            }
            tm::POOL_LANES_BUSY.add(granted as u64);
        }
        BudgetLease {
            budget: self,
            extra: granted,
            metered,
        }
    }
}

/// Capacity of the lazily initialized global budget.
fn default_capacity() -> usize {
    capacity_from_env(std::env::var("EQIMPACT_THREADS").ok(), |warning| {
        eprintln!("{warning}")
    })
}

/// Resolves the `EQIMPACT_THREADS` override into a budget capacity.
/// `0` is clamped to 1 (a budget always owns the caller's lane) with a
/// warning through `warn`; unparsable values are ignored.
fn capacity_from_env(var: Option<String>, mut warn: impl FnMut(&str)) -> usize {
    match var.as_deref().map(str::parse::<usize>) {
        Some(Ok(0)) => {
            warn("warning: EQIMPACT_THREADS=0 is not a usable budget; clamping to 1 lane");
            1
        }
        Some(Ok(n)) => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// A granted allocation of lanes (see [`ThreadBudget::lease`]). Holds
/// `lanes() − 1` lanes out of the shared budget until dropped.
#[derive(Debug)]
pub struct BudgetLease<'b> {
    budget: &'b ThreadBudget,
    extra: usize,
    /// Whether this lease's grant was counted into the telemetry gauge.
    metered: bool,
}

impl BudgetLease<'_> {
    /// Lanes this lease may run on, including the caller's own thread
    /// (always ≥ 1).
    pub fn lanes(&self) -> usize {
        self.extra + 1
    }

    /// The extra lanes drawn from the budget (`lanes() − 1`).
    pub fn extra(&self) -> usize {
        self.extra
    }
}

impl Drop for BudgetLease<'_> {
    fn drop(&mut self) {
        self.budget.free.fetch_add(self.extra, Ordering::AcqRel);
        if self.metered {
            tm::POOL_LANES_BUSY.sub(self.extra as u64);
        }
    }
}

/// One job's completion message: `Ok` or the caught panic payload.
type JobResult = Result<(), Box<dyn Any + Send + 'static>>;

/// A pool of long-lived, parked worker threads executing borrowed job
/// batches under the submit/barrier protocol (see the module docs).
///
/// `WorkerPool::new(0)` is valid and useful: with no workers,
/// [`Self::run`] executes every job inline on the calling thread — the
/// sequential fallback a budget-exhausted lease degrades to, with zero
/// threads and zero synchronization.
pub struct WorkerPool {
    senders: Vec<Sender<PoolJob<'static>>>,
    done_rx: Receiver<JobResult>,
    handles: Vec<JoinHandle<()>>,
    poisoned: bool,
}

impl WorkerPool {
    /// Spawns `workers` parked worker threads (plus the calling thread,
    /// the pool drives `workers + 1` lanes).
    pub fn new(workers: usize) -> Self {
        let (done_tx, done_rx) = channel::<JobResult>();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (job_tx, job_rx) = channel::<PoolJob<'static>>();
            let done_tx = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("eqimpact-pool-{w}"))
                .spawn(move || {
                    // Park on recv until the next job or pool drop
                    // (sender disconnect). A panicking job is caught and
                    // reported as its completion, so the barrier in
                    // `run` always resolves.
                    while let Ok(job) = job_rx.recv() {
                        let result = catch_unwind(AssertUnwindSafe(job));
                        if done_tx.send(result).is_err() {
                            break;
                        }
                    }
                })
                .expect("WorkerPool: failed to spawn a worker thread");
            senders.push(job_tx);
            handles.push(handle);
        }
        WorkerPool {
            senders,
            done_rx,
            handles,
            poisoned: false,
        }
    }

    /// Number of worker threads (the pool's lane count minus the caller).
    pub fn worker_count(&self) -> usize {
        self.senders.len()
    }

    /// Whether an earlier batch panicked (see [`Self::run`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Executes one batch of jobs and returns when **all** of them have
    /// completed (the barrier). Jobs are striped round-robin over
    /// `worker_count() + 1` lanes; the last stripe runs on the calling
    /// thread, concurrently with the workers.
    ///
    /// # Panics
    /// Re-raises the first panicking job's payload after the whole batch
    /// has completed, and poisons the pool: the panicked job may have
    /// left its borrowed buffers half-written, so later `run` calls
    /// panic immediately instead of computing on corrupt state.
    pub fn run<'scope>(&mut self, jobs: Vec<PoolJob<'scope>>) {
        assert!(
            !self.poisoned,
            "WorkerPool: poisoned by a panic in an earlier batch"
        );
        if jobs.is_empty() {
            return;
        }
        let lanes = self.senders.len() + 1;
        let mut own: Vec<PoolJob<'scope>> = Vec::new();
        let mut sent = 0usize;
        // Decided once per batch: metered batches wrap each worker-lane
        // job to record queue wait and lane occupancy (the wrapper
        // allocation only exists on the enabled path).
        let metered = eqimpact_telemetry::enabled();
        for (i, job) in jobs.into_iter().enumerate() {
            let lane = i % lanes;
            if lane < self.senders.len() {
                let job: PoolJob<'scope> = if metered {
                    // The queue-wait latency is wall-clock telemetry; it lands
                    // in the nondeterministic half of the snapshot only.
                    // analyze::allow(R1): queue-wait latency is wall-clock telemetry
                    let submitted = Instant::now();
                    Box::new(move || {
                        tm::POOL_QUEUE_WAIT
                            .record_ns(submitted.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                        tm::POOL_JOBS_RUN.incr();
                        tm::POOL_LANE_JOBS.record(lane + 1, 1);
                        job();
                    })
                } else {
                    job
                };
                // SAFETY: the barrier below blocks until a completion
                // message has arrived for every submitted job, on the
                // success and the panic path alike, so everything the
                // job borrows ('scope) strictly outlives its execution.
                // Workers drop each job at the end of its execution and
                // never retain it.
                let job: PoolJob<'static> =
                    unsafe { std::mem::transmute::<PoolJob<'scope>, PoolJob<'static>>(job) };
                // Workers only exit when the pool is dropped, so the
                // send cannot fail while `self` is alive.
                self.senders[lane]
                    .send(job)
                    .expect("WorkerPool: worker exited while the pool was alive");
                sent += 1;
            } else {
                own.push(job);
            }
        }

        // The caller's stripe runs while the workers chew on theirs. Its
        // panic is deferred too: the barrier must complete first, or the
        // workers could outlive the borrows.
        let own_result = catch_unwind(AssertUnwindSafe(|| {
            for job in own {
                job();
                tm::POOL_JOBS_INLINE.incr();
                tm::POOL_LANE_JOBS.record(0, 1);
            }
        }));

        // The barrier: one completion per submitted job, in any order.
        let mut failure: Option<Box<dyn Any + Send>> = None;
        for _ in 0..sent {
            match self.done_rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(payload)) => {
                    tm::POOL_PANICS.incr();
                    failure.get_or_insert(payload);
                }
                Err(_) => {
                    // Unreachable while `self` holds the job senders,
                    // but never deadlock: fail loudly instead.
                    self.poisoned = true;
                    panic!("WorkerPool: workers disconnected mid-batch");
                }
            }
        }
        if let Err(payload) = own_result {
            tm::POOL_PANICS.incr();
            failure.get_or_insert(payload);
        }
        if let Some(payload) = failure {
            self.poisoned = true;
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the job channels: parked workers' recv errors out
        // and their loops end. All jobs of any batch completed before
        // `run` returned, so the workers are idle here.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.senders.len())
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

/// Runs every job on its own scoped OS thread and returns once all of
/// them have finished.
///
/// This is the workspace's only sanctioned scoped-spawn entry point
/// (thread-hygiene rule R3): callers that already hold a
/// [`ThreadBudget`] lease — such as `trials::run_trials_with_budget`,
/// whose stripes are long-lived and uniform, so the parked
/// [`WorkerPool`] would buy nothing — hand their stripe closures here
/// instead of touching `std::thread` themselves.
///
/// Panic behaviour matches `std::thread::scope`: every job is joined
/// first, then the first panic (if any) is re-raised. Callers that
/// must aggregate panics deterministically should catch them inside
/// the job, as the trial runner does.
pub fn scoped_run<F>(jobs: Vec<F>)
where
    F: FnOnce() + Send,
{
    std::thread::scope(|scope| {
        for job in jobs {
            scope.spawn(job);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn budget_lease_grants_and_returns() {
        let budget = ThreadBudget::new(4);
        assert_eq!(budget.capacity(), 4);
        assert_eq!(budget.available_lanes(), 4);
        let a = budget.lease(3);
        assert_eq!(a.lanes(), 3);
        assert_eq!(a.extra(), 2);
        assert_eq!(budget.available_lanes(), 2);
        let b = budget.lease(10);
        assert_eq!(b.lanes(), 2, "only one extra lane was free");
        let c = budget.lease(5);
        assert_eq!(
            c.lanes(),
            1,
            "exhausted budget still grants the caller's lane"
        );
        drop(b);
        drop(c);
        assert_eq!(budget.available_lanes(), 2);
        drop(a);
        assert_eq!(budget.available_lanes(), 4);
    }

    #[test]
    fn budget_capacity_is_at_least_one() {
        let budget = ThreadBudget::new(0);
        assert_eq!(budget.capacity(), 1);
        assert_eq!(budget.available_lanes(), 1);
        assert_eq!(budget.lease(8).lanes(), 1);
    }

    #[test]
    fn global_budget_is_fixed_after_first_use() {
        let capacity = ThreadBudget::global().capacity();
        assert!(capacity >= 1);
        // Re-initializing with the same capacity is fine; a different
        // one reports the existing capacity.
        assert!(ThreadBudget::init_global(capacity).is_ok());
        match ThreadBudget::init_global(capacity + 1) {
            Err(existing) => assert_eq!(existing, capacity),
            Ok(_) => panic!("a second capacity must be rejected"),
        }
    }

    #[test]
    fn env_capacity_zero_clamps_to_one_with_a_warning() {
        let mut warnings = Vec::new();
        let capacity = capacity_from_env(Some("0".to_string()), |w| warnings.push(w.to_string()));
        assert_eq!(capacity, 1);
        assert_eq!(warnings.len(), 1);
        assert!(
            warnings[0].contains("EQIMPACT_THREADS=0"),
            "warning names the bad setting: {}",
            warnings[0]
        );
    }

    #[test]
    fn env_capacity_positive_and_garbage_values() {
        let mut warned = false;
        assert_eq!(
            capacity_from_env(Some("3".to_string()), |_| warned = true),
            3
        );
        assert!(!warned, "positive values warn nothing");
        let fallback = capacity_from_env(None, |_| warned = true);
        assert!(fallback >= 1);
        assert_eq!(
            capacity_from_env(Some("not-a-number".to_string()), |_| warned = true),
            fallback,
            "garbage falls back to host parallelism"
        );
        assert!(!warned, "unparsable values are ignored silently");
    }

    #[test]
    fn pool_runs_every_job_exactly_once() {
        let mut pool = WorkerPool::new(3);
        assert_eq!(pool.worker_count(), 3);
        let mut cells = vec![0usize; 10];
        {
            let jobs: Vec<PoolJob<'_>> = cells
                .iter_mut()
                .enumerate()
                .map(|(i, cell)| Box::new(move || *cell += i + 1) as PoolJob<'_>)
                .collect();
            pool.run(jobs);
        }
        let expected: Vec<usize> = (1..=10).collect();
        assert_eq!(cells, expected);
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let mut pool = WorkerPool::new(0);
        assert_eq!(pool.worker_count(), 0);
        let hits = AtomicUsize::new(0);
        let jobs: Vec<PoolJob<'_>> = (0..5)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as PoolJob<'_>
            })
            .collect();
        pool.run(jobs);
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let mut pool = WorkerPool::new(2);
        let total = Arc::new(AtomicUsize::new(0));
        for batch in 0..4 {
            let jobs: Vec<PoolJob<'_>> = (0..6)
                .map(|_| {
                    let total = Arc::clone(&total);
                    Box::new(move || {
                        total.fetch_add(batch + 1, Ordering::SeqCst);
                    }) as PoolJob<'_>
                })
                .collect();
            pool.run(jobs);
        }
        assert_eq!(total.load(Ordering::SeqCst), 6 * (1 + 2 + 3 + 4));
        assert!(!pool.is_poisoned());
    }

    #[test]
    fn more_jobs_than_lanes_stripe_over_the_workers() {
        let mut pool = WorkerPool::new(2);
        let mut cells = [0usize; 23];
        let jobs: Vec<PoolJob<'_>> = cells
            .iter_mut()
            .map(|cell| Box::new(move || *cell = 7) as PoolJob<'_>)
            .collect();
        pool.run(jobs);
        assert!(cells.iter().all(|&c| c == 7));
    }

    #[test]
    fn panic_in_a_worker_propagates_and_poisons_the_pool() {
        let mut pool = WorkerPool::new(2);
        let completed = Arc::new(AtomicUsize::new(0));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<PoolJob<'_>> = (0..6)
                .map(|i| {
                    let completed = Arc::clone(&completed);
                    Box::new(move || {
                        if i == 1 {
                            panic!("job {i} exploded");
                        }
                        completed.fetch_add(1, Ordering::SeqCst);
                    }) as PoolJob<'_>
                })
                .collect();
            pool.run(jobs);
        }));
        let payload = result.expect_err("the job panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("string panic payload");
        assert!(message.contains("exploded"), "message: {message}");
        // The barrier completed: every non-panicking job still ran.
        assert_eq!(completed.load(Ordering::SeqCst), 5);
        assert!(pool.is_poisoned());

        // A later batch fails fast instead of deadlocking the barrier or
        // computing on half-written state.
        let again = catch_unwind(AssertUnwindSafe(|| pool.run(vec![Box::new(|| ())])));
        let payload = again.expect_err("poisoned pool must reject new batches");
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("string panic payload");
        assert!(message.contains("poisoned"), "message: {message}");
    }

    #[test]
    fn panic_on_the_callers_stripe_also_propagates() {
        // With zero workers every job runs on the caller; the panic path
        // must behave identically.
        let mut pool = WorkerPool::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![Box::new(|| panic!("inline boom"))]);
        }));
        assert!(result.is_err());
        assert!(pool.is_poisoned());
    }

    #[test]
    fn empty_batches_are_a_no_op() {
        let mut pool = WorkerPool::new(1);
        pool.run(Vec::new());
        pool.run(Vec::new());
        assert!(!pool.is_poisoned());
    }
}
