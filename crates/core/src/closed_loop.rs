//! The closed loop of Fig. 1: AI system, user population, feedback filter
//! and delay, wired by the statically dispatched [`LoopRunner`].
//!
//! Each block is a trait with two entry points: an owned-return method
//! (`signals`, `observe`, `respond`, `apply`) that is convenient to
//! implement, and an in-place `*_into` twin that writes into a reusable
//! buffer. Each has a default in terms of the other, so an implementor
//! provides whichever is natural; the runner always calls the `*_into`
//! form, which makes the steady-state step **allocation-free** whenever
//! the blocks override it.
//!
//! [`LoopRunner<S, P, F>`] is generic over its blocks (static dispatch on
//! the hot path); [`DynLoopRunner`] is the type-erased form for callers
//! that choose blocks at runtime, and produces bit-identical records for
//! the same seed.

use crate::checkpoint::ModelCheckpoint;
use crate::features::FeatureMatrix;
use crate::recorder::{LoopRecord, RecordPolicy, StepSink};
use eqimpact_stats::SimRng;
use eqimpact_telemetry::metrics as tm;
use std::collections::VecDeque;

/// The filtered feedback package delivered (after the delay) to the AI
/// system for retraining.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Feedback {
    /// Step at which the underlying actions were taken.
    pub step: usize,
    /// Filtered per-user values (e.g. running average default rates).
    pub per_user: Vec<f64>,
    /// Filtered aggregate of the actions.
    pub aggregate: f64,
    /// The per-user visible features at observation time (what the AI was
    /// allowed to see — e.g. income codes, never protected attributes).
    pub visible: FeatureMatrix,
    /// The raw actions `y_i` of that step.
    pub actions: Vec<f64>,
    /// The signals `π(k, i)` that were broadcast at that step.
    pub signals: Vec<f64>,
}

/// The AI system block: produces per-user signals, retrains on delayed
/// feedback.
///
/// Implement `signals` (owned return) **or** `signals_into` (in-place);
/// each defaults to the other, and the runner calls `signals_into`.
///
/// # Warning
/// Implementing **neither** compiles (both have defaults) but recurses
/// infinitely on first use — always override at least one.
pub trait AiSystem {
    /// Produces `π(k, i)` for every user given their visible features.
    fn signals(&mut self, k: usize, visible: &FeatureMatrix) -> Vec<f64> {
        let mut out = Vec::new();
        self.signals_into(k, visible, &mut out);
        out
    }

    /// Writes `π(k, i)` into `out` (cleared first), reusing its capacity.
    fn signals_into(&mut self, k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        let signals = self.signals(k, visible);
        out.clear();
        out.extend_from_slice(&signals);
    }

    /// Absorbs one (delayed, filtered) feedback package — the retraining
    /// edge of Fig. 1.
    fn retrain(&mut self, k: usize, feedback: &Feedback);

    /// Captures this system's learned state (weights, per-user memory)
    /// into `out` and returns `true`, or returns `false` when the system
    /// does not support checkpointing (the default). `out` arrives
    /// already [`reset`](ModelCheckpoint::reset) for the current step —
    /// implementations only append fields.
    fn checkpoint_into(&self, out: &mut ModelCheckpoint) -> bool {
        let _ = out;
        false
    }

    /// Restores learned state previously captured by
    /// [`Self::checkpoint_into`], returning `true` on success. Returning
    /// `false` (the default, or on an unrecognized checkpoint) tells the
    /// caller to fall back to [`Self::retrain`].
    fn restore_checkpoint(&mut self, checkpoint: &ModelCheckpoint) -> bool {
        let _ = checkpoint;
        false
    }

    /// Optional downcasting hook so callers can inspect a concrete AI
    /// system (e.g. read the final scorecard) after a type-erased run.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// The user population block: holds private states `x_i`, responds
/// stochastically to signals.
///
/// Implement the owned-return methods **or** their `*_into` twins; each
/// defaults to the other, and the runner calls the `*_into` forms.
///
/// # Warning
/// For each pair (`observe`/`observe_into`, `respond`/`respond_into`),
/// implementing **neither** compiles but recurses infinitely on first
/// use — always override at least one of each pair.
pub trait UserPopulation {
    /// Number of users `N`.
    fn user_count(&self) -> usize;

    /// Advances private states to step `k` (e.g. income resampling) and
    /// returns the per-user features visible to the AI system.
    fn observe(&mut self, k: usize, rng: &mut SimRng) -> FeatureMatrix {
        let mut out = FeatureMatrix::default();
        self.observe_into(k, rng, &mut out);
        out
    }

    /// Writes the visible features into `out`, reusing its allocation.
    fn observe_into(&mut self, k: usize, rng: &mut SimRng, out: &mut FeatureMatrix) {
        let visible = self.observe(k, rng);
        out.fill_from(&visible);
    }

    /// Responds to the broadcast signals with actions `y_i(k)`.
    fn respond(&mut self, k: usize, signals: &[f64], rng: &mut SimRng) -> Vec<f64> {
        let mut out = Vec::new();
        self.respond_into(k, signals, rng, &mut out);
        out
    }

    /// Writes the actions into `out` (cleared first), reusing its capacity.
    fn respond_into(&mut self, k: usize, signals: &[f64], rng: &mut SimRng, out: &mut Vec<f64>) {
        let actions = self.respond(k, signals, rng);
        out.clear();
        out.extend_from_slice(&actions);
    }
}

/// The filter block on the feedback path.
///
/// Implement `apply` (owned return) **or** `apply_into` (in-place); each
/// defaults to the other, and the runner calls `apply_into` with a
/// recycled [`Feedback`] package.
///
/// # Warning
/// Implementing **neither** compiles (both have defaults) but recurses
/// infinitely on first use — always override at least one.
pub trait FeedbackFilter {
    /// Produces the feedback package for step `k` from the raw
    /// observations.
    fn apply(
        &mut self,
        k: usize,
        visible: &FeatureMatrix,
        signals: &[f64],
        actions: &[f64],
    ) -> Feedback {
        let mut out = Feedback::default();
        self.apply_into(k, visible, signals, actions, &mut out);
        out
    }

    /// Writes the feedback package into `out`, reusing its buffers.
    ///
    /// `out` arrives holding a **previous step's contents** (the runner
    /// recycles packages through the delay line): an override must assign
    /// every field, not just the ones it computes, or stale
    /// `visible`/`signals`/`actions` leak into retraining.
    fn apply_into(
        &mut self,
        k: usize,
        visible: &FeatureMatrix,
        signals: &[f64],
        actions: &[f64],
        out: &mut Feedback,
    ) {
        *out = self.apply(k, visible, signals, actions);
    }

    /// Captures the filter's accumulated state into `out` (append-only;
    /// by convention filter fields are prefixed `filter.`) and returns
    /// `true`, or `false` when the filter does not support checkpointing
    /// (the default — correct for stateless filters).
    fn checkpoint_into(&self, out: &mut ModelCheckpoint) -> bool {
        let _ = out;
        false
    }

    /// Restores state captured by [`Self::checkpoint_into`], returning
    /// `true` on success; `false` means the caller must rebuild the
    /// filter state some other way (e.g. re-applying the trace).
    fn restore_checkpoint(&mut self, checkpoint: &ModelCheckpoint) -> bool {
        let _ = checkpoint;
        false
    }
}

// Boxed adapters: a `Box<dyn Block>` is itself a block, so the generic
// runner subsumes the old fully-boxed construction (see [`DynLoopRunner`]).

impl<T: AiSystem + ?Sized> AiSystem for Box<T> {
    fn signals(&mut self, k: usize, visible: &FeatureMatrix) -> Vec<f64> {
        (**self).signals(k, visible)
    }
    fn signals_into(&mut self, k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        (**self).signals_into(k, visible, out)
    }
    fn retrain(&mut self, k: usize, feedback: &Feedback) {
        (**self).retrain(k, feedback)
    }
    fn checkpoint_into(&self, out: &mut ModelCheckpoint) -> bool {
        (**self).checkpoint_into(out)
    }
    fn restore_checkpoint(&mut self, checkpoint: &ModelCheckpoint) -> bool {
        (**self).restore_checkpoint(checkpoint)
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }
}

impl<T: UserPopulation + ?Sized> UserPopulation for Box<T> {
    fn user_count(&self) -> usize {
        (**self).user_count()
    }
    fn observe(&mut self, k: usize, rng: &mut SimRng) -> FeatureMatrix {
        (**self).observe(k, rng)
    }
    fn observe_into(&mut self, k: usize, rng: &mut SimRng, out: &mut FeatureMatrix) {
        (**self).observe_into(k, rng, out)
    }
    fn respond(&mut self, k: usize, signals: &[f64], rng: &mut SimRng) -> Vec<f64> {
        (**self).respond(k, signals, rng)
    }
    fn respond_into(&mut self, k: usize, signals: &[f64], rng: &mut SimRng, out: &mut Vec<f64>) {
        (**self).respond_into(k, signals, rng, out)
    }
}

impl<T: FeedbackFilter + ?Sized> FeedbackFilter for Box<T> {
    fn apply(
        &mut self,
        k: usize,
        visible: &FeatureMatrix,
        signals: &[f64],
        actions: &[f64],
    ) -> Feedback {
        (**self).apply(k, visible, signals, actions)
    }
    fn apply_into(
        &mut self,
        k: usize,
        visible: &FeatureMatrix,
        signals: &[f64],
        actions: &[f64],
        out: &mut Feedback,
    ) {
        (**self).apply_into(k, visible, signals, actions, out)
    }
    fn checkpoint_into(&self, out: &mut ModelCheckpoint) -> bool {
        (**self).checkpoint_into(out)
    }
    fn restore_checkpoint(&mut self, checkpoint: &ModelCheckpoint) -> bool {
        (**self).restore_checkpoint(checkpoint)
    }
}

/// The default filter: running (accumulating) per-user means and the
/// aggregate mean — Fig. 1's "accumulating the training data".
#[derive(Debug, Clone, Default)]
pub struct MeanFilter {
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl FeedbackFilter for MeanFilter {
    fn apply_into(
        &mut self,
        k: usize,
        visible: &FeatureMatrix,
        signals: &[f64],
        actions: &[f64],
        out: &mut Feedback,
    ) {
        if self.sums.len() != actions.len() {
            self.sums = vec![0.0; actions.len()];
            self.counts = vec![0; actions.len()];
        }
        for (i, &a) in actions.iter().enumerate() {
            self.sums[i] += a;
            self.counts[i] += 1;
        }
        out.step = k;
        out.per_user.clear();
        // Every count was just incremented above, so c >= 1 here.
        out.per_user.extend(
            self.sums
                .iter()
                .zip(&self.counts)
                .map(|(&s, &c)| s / c as f64),
        );
        out.aggregate = if actions.is_empty() {
            f64::NAN
        } else {
            actions.iter().sum::<f64>() / actions.len() as f64
        };
        out.visible.fill_from(visible);
        out.signals.clear();
        out.signals.extend_from_slice(signals);
        out.actions.clear();
        out.actions.extend_from_slice(actions);
    }
}

/// The loop runner: wires AI system, population, filter and a delay line
/// of `delay` steps between observation and retraining. Generic over its
/// blocks — the hot path is statically dispatched and, when the blocks
/// implement their `*_into` hooks, allocation-free in steady state
/// (observation, signal, action and feedback buffers are all recycled).
///
/// Use [`LoopBuilder`] to construct one, or [`LoopRunner::new`] for the
/// positional form. For runtime-chosen blocks, box them and use the
/// [`DynLoopRunner`] alias — same runner, same record, dynamic dispatch.
pub struct LoopRunner<S, P, F> {
    ai: S,
    population: P,
    filter: F,
    delay: usize,
    policy: RecordPolicy,
    pending: VecDeque<Feedback>,
    spare: Vec<Feedback>,
    visible: FeatureMatrix,
    signals: Vec<f64>,
    actions: Vec<f64>,
}

/// The fully type-erased runner: every block boxed, blocks chosen at
/// runtime. Produces bit-identical [`LoopRecord`]s to the generic form
/// for the same seed.
pub type DynLoopRunner =
    LoopRunner<Box<dyn AiSystem>, Box<dyn UserPopulation>, Box<dyn FeedbackFilter>>;

impl<S: AiSystem, P: UserPopulation, F: FeedbackFilter> LoopRunner<S, P, F> {
    /// Creates a runner. `delay = 0` retrains on the same step's feedback;
    /// `delay = 1` reproduces the paper's "with some delay, their actions
    /// ... are utilized in retraining".
    pub fn new(ai: S, population: P, filter: F, delay: usize) -> Self {
        LoopRunner {
            ai,
            population,
            filter,
            delay,
            policy: RecordPolicy::Full,
            pending: VecDeque::new(),
            spare: Vec::new(),
            visible: FeatureMatrix::default(),
            signals: Vec::new(),
            actions: Vec::new(),
        }
    }

    /// The configured delay.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// The configured record policy.
    pub fn record_policy(&self) -> RecordPolicy {
        self.policy
    }

    /// Sets the record policy (see [`RecordPolicy`]).
    pub fn set_record_policy(&mut self, policy: RecordPolicy) {
        self.policy = policy;
    }

    /// Runs `steps` passes of the loop, returning the telemetry selected
    /// by the record policy.
    pub fn run(&mut self, steps: usize, rng: &mut SimRng) -> LoopRecord {
        self.run_with_sink(steps, rng, &mut ())
    }

    /// [`Self::run`] with a [`StepSink`] observing every step's raw
    /// telemetry (visible features included) at the step barrier — the
    /// hook the trace store records through. The returned record is
    /// unaffected by the sink.
    pub fn run_with_sink<K: StepSink + ?Sized>(
        &mut self,
        steps: usize,
        rng: &mut SimRng,
        sink: &mut K,
    ) -> LoopRecord {
        let n = self.population.user_count();
        let mut record = LoopRecord::with_policy(n, self.policy);
        record.reserve(steps);
        let wants_checkpoints = sink.wants_checkpoints();
        let mut checkpoint = ModelCheckpoint::new();
        eqimpact_telemetry::progress::add_goal(steps as u64);

        for k in 0..steps {
            {
                let _phase = tm::LOOP_OBSERVE.enter();
                self.population.observe_into(k, rng, &mut self.visible);
            }
            debug_assert_eq!(
                self.visible.row_count(),
                n,
                "observe must return N feature rows"
            );
            {
                let _phase = tm::LOOP_SIGNAL.enter();
                self.ai.signals_into(k, &self.visible, &mut self.signals);
            }
            assert_eq!(
                self.signals.len(),
                n,
                "AiSystem must emit one signal per user"
            );
            {
                let _phase = tm::LOOP_RESPOND.enter();
                self.population
                    .respond_into(k, &self.signals, rng, &mut self.actions);
            }
            assert_eq!(
                self.actions.len(),
                n,
                "population must emit one action per user"
            );

            let mut feedback = self.spare.pop().unwrap_or_default();
            {
                let _phase = tm::LOOP_FILTER.enter();
                self.filter.apply_into(
                    k,
                    &self.visible,
                    &self.signals,
                    &self.actions,
                    &mut feedback,
                );
            }
            {
                let _phase = tm::LOOP_RECORD.enter();
                record.push_step(&self.signals, &self.actions, &feedback.per_user);
                sink.on_step(
                    k,
                    &self.visible,
                    &self.signals,
                    &self.actions,
                    &feedback.per_user,
                );
            }

            self.pending.push_back(feedback);
            if self.pending.len() > self.delay {
                let _phase = tm::LOOP_RETRAIN.enter();
                let due = self.pending.pop_front().expect("non-empty by check");
                self.ai.retrain(k, &due);
                // Recycle the package: its buffers become the next step's.
                self.spare.push(due);
                if wants_checkpoints {
                    checkpoint.reset(k);
                    if self.ai.checkpoint_into(&mut checkpoint) {
                        let _ = self.filter.checkpoint_into(&mut checkpoint);
                        sink.on_checkpoint(k, &checkpoint);
                    }
                }
            }
            tm::LOOP_STEPS.incr();
        }
        record
    }

    /// Access to the AI system (e.g. to inspect the final model).
    pub fn ai(&self) -> &S {
        &self.ai
    }

    /// Mutable access to the AI system.
    pub fn ai_mut(&mut self) -> &mut S {
        &mut self.ai
    }

    /// Access to the population.
    pub fn population(&self) -> &P {
        &self.population
    }

    /// Access to the filter.
    pub fn filter(&self) -> &F {
        &self.filter
    }

    /// Decomposes the runner back into its blocks.
    pub fn into_parts(self) -> (S, P, F) {
        (self.ai, self.population, self.filter)
    }
}

/// Fluent constructor for [`LoopRunner`].
///
/// ```
/// use eqimpact_core::closed_loop::{LoopBuilder, MeanFilter};
/// use eqimpact_core::recorder::RecordPolicy;
/// # use eqimpact_core::closed_loop::{AiSystem, Feedback, UserPopulation};
/// # use eqimpact_core::features::FeatureMatrix;
/// # use eqimpact_stats::SimRng;
/// # struct Ai; impl AiSystem for Ai {
/// #     fn signals(&mut self, _k: usize, v: &FeatureMatrix) -> Vec<f64> { vec![0.0; v.row_count()] }
/// #     fn retrain(&mut self, _k: usize, _f: &Feedback) {}
/// # }
/// # struct Users; impl UserPopulation for Users {
/// #     fn user_count(&self) -> usize { 3 }
/// #     fn observe(&mut self, _k: usize, _rng: &mut SimRng) -> FeatureMatrix { FeatureMatrix::zeros(3, 0) }
/// #     fn respond(&mut self, _k: usize, s: &[f64], _rng: &mut SimRng) -> Vec<f64> { s.to_vec() }
/// # }
/// let mut runner = LoopBuilder::new(Ai, Users)
///     .filter(MeanFilter::default())
///     .delay(1)
///     .record(RecordPolicy::Full)
///     .build();
/// let record = runner.run(10, &mut SimRng::new(7));
/// assert_eq!(record.steps(), 10);
/// ```
pub struct LoopBuilder<S, P, F = MeanFilter> {
    ai: S,
    population: P,
    filter: F,
    delay: usize,
    policy: RecordPolicy,
    shards: Option<usize>,
    budget: Option<&'static crate::pool::ThreadBudget>,
}

impl<S: AiSystem, P: UserPopulation> LoopBuilder<S, P, MeanFilter> {
    /// Starts a builder from the two mandatory blocks. Defaults: a
    /// [`MeanFilter`], the paper's one-step delay, and full recording.
    pub fn new(ai: S, population: P) -> Self {
        LoopBuilder {
            ai,
            population,
            filter: MeanFilter::default(),
            delay: 1,
            policy: RecordPolicy::Full,
            shards: None,
            budget: None,
        }
    }
}

impl<S: AiSystem, P: UserPopulation, F: FeedbackFilter> LoopBuilder<S, P, F> {
    /// Replaces the feedback filter.
    pub fn filter<G: FeedbackFilter>(self, filter: G) -> LoopBuilder<S, P, G> {
        LoopBuilder {
            ai: self.ai,
            population: self.population,
            filter,
            delay: self.delay,
            policy: self.policy,
            shards: self.shards,
            budget: self.budget,
        }
    }

    /// Sets the shard count for [`Self::build_sharded`] (`0` means auto:
    /// resolve against the thread budget's available lanes,
    /// [`crate::shard::auto_shards`]; always clamped to the population
    /// size). Ignored by the sequential [`Self::build`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Sets the [`ThreadBudget`](crate::pool::ThreadBudget) the sharded
    /// runner leases its lanes from (default: the process-wide
    /// [`global`](crate::pool::ThreadBudget::global) budget). Ignored by
    /// the sequential [`Self::build`].
    pub fn thread_budget(mut self, budget: &'static crate::pool::ThreadBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the feedback delay in steps.
    pub fn delay(mut self, delay: usize) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the record policy ([`RecordPolicy::Full`] keeps every per-user
    /// series; [`RecordPolicy::Thin`] keeps per-step aggregates only).
    pub fn record(mut self, policy: RecordPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builds the runner.
    pub fn build(self) -> LoopRunner<S, P, F> {
        let mut runner = LoopRunner::new(self.ai, self.population, self.filter, self.delay);
        runner.policy = self.policy;
        runner
    }

    /// Builds the intra-trial parallel runner
    /// ([`crate::shard::ShardedRunner`]): the population is partitioned
    /// into the configured number of row shards ([`Self::shards`]; auto =
    /// the budget's available lanes when unset) and each step's user
    /// sweep runs on the parked workers of a budget-leased
    /// [`WorkerPool`](crate::pool::WorkerPool). The produced record is
    /// bit-identical to [`Self::build`]'s for blocks honouring the
    /// [`crate::shard::RowStreams`] contract.
    pub fn build_sharded(self) -> crate::shard::ShardedRunner<S, P, F>
    where
        S: crate::shard::ShardableAi,
        P: crate::shard::ShardablePopulation,
    {
        let budget = self
            .budget
            .unwrap_or_else(crate::pool::ThreadBudget::global);
        let mut runner = crate::shard::ShardedRunner::with_budget(
            self.ai,
            self.population,
            self.filter,
            self.delay,
            self.shards.unwrap_or(0),
            budget,
        );
        runner.set_record_policy(self.policy);
        runner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// AI that broadcasts its internal level and tracks feedback count.
    struct CountingAi {
        level: f64,
        retrain_steps: Vec<usize>,
    }

    impl AiSystem for CountingAi {
        fn signals(&mut self, _k: usize, visible: &FeatureMatrix) -> Vec<f64> {
            vec![self.level; visible.row_count()]
        }
        fn retrain(&mut self, _k: usize, feedback: &Feedback) {
            self.retrain_steps.push(feedback.step);
            self.level = feedback.aggregate;
        }
    }

    struct DeterministicUsers {
        n: usize,
    }

    impl UserPopulation for DeterministicUsers {
        fn user_count(&self) -> usize {
            self.n
        }
        fn observe_into(&mut self, k: usize, _rng: &mut SimRng, out: &mut FeatureMatrix) {
            out.reshape(self.n, 1);
            for (i, cell) in out.col_mut(0).iter_mut().enumerate() {
                *cell = (i + k) as f64;
            }
        }
        fn respond_into(
            &mut self,
            _k: usize,
            signals: &[f64],
            _rng: &mut SimRng,
            out: &mut Vec<f64>,
        ) {
            out.clear();
            out.extend(signals.iter().map(|&s| s + 1.0));
        }
    }

    fn runner_with_delay(delay: usize) -> LoopRunner<CountingAi, DeterministicUsers, MeanFilter> {
        LoopBuilder::new(
            CountingAi {
                level: 0.0,
                retrain_steps: Vec::new(),
            },
            DeterministicUsers { n: 3 },
        )
        .delay(delay)
        .build()
    }

    #[test]
    fn record_dimensions() {
        let mut runner = runner_with_delay(1);
        let mut rng = SimRng::new(1);
        let record = runner.run(10, &mut rng);
        assert_eq!(record.steps(), 10);
        assert_eq!(record.user_count(), 3);
        assert_eq!(record.signals(0).len(), 3);
        assert_eq!(record.actions(9).len(), 3);
    }

    #[test]
    fn delay_line_shifts_feedback() {
        // With delay d, the feedback absorbed at step k is from step k - d.
        for delay in [0usize, 1, 3] {
            let mut runner = runner_with_delay(delay);
            let mut rng = SimRng::new(2);
            runner.run(8, &mut rng);
            let expected: Vec<usize> = (0..(8 - delay)).collect();
            assert_eq!(runner.ai().retrain_steps, expected, "delay {delay}");
        }
    }

    #[test]
    fn mean_filter_accumulates_per_user() {
        let mut f = MeanFilter::default();
        let visible = FeatureMatrix::zeros(2, 0);
        let signals = vec![0.0, 0.0];
        let f1 = f.apply(0, &visible, &signals, &[1.0, 0.0]);
        assert_eq!(f1.per_user, vec![1.0, 0.0]);
        assert_eq!(f1.aggregate, 0.5);
        let f2 = f.apply(1, &visible, &signals, &[0.0, 0.0]);
        assert_eq!(f2.per_user, vec![0.5, 0.0]);
        assert_eq!(f2.aggregate, 0.0);
        assert_eq!(f2.step, 1);
        assert_eq!(f2.actions, vec![0.0, 0.0]);
    }

    #[test]
    fn loop_converges_to_fixed_point() {
        // Verify the recorded dynamics are consistent:
        // signal(k) = action(k) - 1 for every step (user responds s + 1).
        let mut runner = runner_with_delay(1);
        let mut rng = SimRng::new(3);
        let record = runner.run(20, &mut rng);
        for k in 0..20 {
            for i in 0..3 {
                assert!((record.actions(k)[i] - record.signals(k)[i] - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn boxed_and_generic_runners_agree() {
        let mut generic = runner_with_delay(2);
        let mut boxed: DynLoopRunner = LoopRunner::new(
            Box::new(CountingAi {
                level: 0.0,
                retrain_steps: Vec::new(),
            }),
            Box::new(DeterministicUsers { n: 3 }),
            Box::new(MeanFilter::default()),
            2,
        );
        let a = generic.run(25, &mut SimRng::new(11));
        let b = boxed.run(25, &mut SimRng::new(11));
        assert_eq!(a, b);
    }

    #[test]
    fn thin_record_keeps_aggregates_only() {
        let mut runner = LoopBuilder::new(
            CountingAi {
                level: 0.25,
                retrain_steps: Vec::new(),
            },
            DeterministicUsers { n: 4 },
        )
        .record(RecordPolicy::Thin)
        .build();
        let record = runner.run(6, &mut SimRng::new(5));
        assert_eq!(record.steps(), 6);
        assert_eq!(record.mean_actions().len(), 6);
        // First step: signal 0.25 broadcast, users respond s + 1.
        assert!((record.mean_actions()[0] - 1.25).abs() < 1e-12);
    }

    #[test]
    fn builder_defaults_match_paper() {
        let runner = LoopBuilder::new(
            CountingAi {
                level: 0.0,
                retrain_steps: Vec::new(),
            },
            DeterministicUsers { n: 2 },
        )
        .build();
        assert_eq!(runner.delay(), 1);
        assert_eq!(runner.record_policy(), RecordPolicy::Full);
    }

    #[test]
    fn into_parts_returns_blocks() {
        let mut runner = runner_with_delay(0);
        runner.run(3, &mut SimRng::new(1));
        let (ai, population, _filter) = runner.into_parts();
        assert_eq!(ai.retrain_steps, vec![0, 1, 2]);
        assert_eq!(population.user_count(), 3);
    }

    #[test]
    #[should_panic(expected = "one signal per user")]
    fn mismatched_ai_is_caught() {
        struct BadAi;
        impl AiSystem for BadAi {
            fn signals(&mut self, _k: usize, _visible: &FeatureMatrix) -> Vec<f64> {
                vec![0.0] // wrong length
            }
            fn retrain(&mut self, _k: usize, _feedback: &Feedback) {}
        }
        let mut runner =
            LoopRunner::new(BadAi, DeterministicUsers { n: 3 }, MeanFilter::default(), 0);
        runner.run(1, &mut SimRng::new(0));
    }
}
