//! The closed loop of Fig. 1: AI system, user population, feedback filter
//! and delay, wired by [`LoopRunner`].

use crate::recorder::LoopRecord;
use eqimpact_stats::SimRng;
use std::collections::VecDeque;

/// The filtered feedback package delivered (after the delay) to the AI
/// system for retraining.
#[derive(Debug, Clone, PartialEq)]
pub struct Feedback {
    /// Step at which the underlying actions were taken.
    pub step: usize,
    /// Filtered per-user values (e.g. running average default rates).
    pub per_user: Vec<f64>,
    /// Filtered aggregate of the actions.
    pub aggregate: f64,
    /// The per-user visible features at observation time (what the AI was
    /// allowed to see — e.g. income codes, never protected attributes).
    pub visible: Vec<Vec<f64>>,
    /// The raw actions `y_i` of that step.
    pub actions: Vec<f64>,
    /// The signals `π(k, i)` that were broadcast at that step.
    pub signals: Vec<f64>,
}

/// The AI system block: produces per-user signals, retrains on delayed
/// feedback.
pub trait AiSystem {
    /// Produces `π(k, i)` for every user given their visible features.
    fn signals(&mut self, k: usize, visible: &[Vec<f64>]) -> Vec<f64>;

    /// Absorbs one (delayed, filtered) feedback package — the retraining
    /// edge of Fig. 1.
    fn retrain(&mut self, k: usize, feedback: &Feedback);

    /// Optional downcasting hook so callers can inspect a concrete AI
    /// system (e.g. read the final scorecard) after a type-erased run.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// The user population block: holds private states `x_i`, responds
/// stochastically to signals.
pub trait UserPopulation {
    /// Number of users `N`.
    fn user_count(&self) -> usize;

    /// Advances private states to step `k` (e.g. income resampling) and
    /// returns the per-user features visible to the AI system.
    fn observe(&mut self, k: usize, rng: &mut SimRng) -> Vec<Vec<f64>>;

    /// Responds to the broadcast signals with actions `y_i(k)`.
    fn respond(&mut self, k: usize, signals: &[f64], rng: &mut SimRng) -> Vec<f64>;
}

/// The filter block on the feedback path.
pub trait FeedbackFilter {
    /// Produces the feedback package for step `k` from the raw
    /// observations.
    fn apply(
        &mut self,
        k: usize,
        visible: &[Vec<f64>],
        signals: &[f64],
        actions: &[f64],
    ) -> Feedback;
}

/// The default filter: running (accumulating) per-user means and the
/// aggregate mean — Fig. 1's "accumulating the training data".
#[derive(Debug, Clone, Default)]
pub struct MeanFilter {
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl FeedbackFilter for MeanFilter {
    fn apply(
        &mut self,
        k: usize,
        visible: &[Vec<f64>],
        signals: &[f64],
        actions: &[f64],
    ) -> Feedback {
        if self.sums.len() != actions.len() {
            self.sums = vec![0.0; actions.len()];
            self.counts = vec![0; actions.len()];
        }
        for (i, &a) in actions.iter().enumerate() {
            self.sums[i] += a;
            self.counts[i] += 1;
        }
        let per_user: Vec<f64> = self
            .sums
            .iter()
            .zip(&self.counts)
            .map(|(&s, &c)| if c == 0 { f64::NAN } else { s / c as f64 })
            .collect();
        let aggregate = if actions.is_empty() {
            f64::NAN
        } else {
            actions.iter().sum::<f64>() / actions.len() as f64
        };
        Feedback {
            step: k,
            per_user,
            aggregate,
            visible: visible.to_vec(),
            signals: signals.to_vec(),
            actions: actions.to_vec(),
        }
    }
}

/// The loop runner: wires AI system, population, filter and a delay line
/// of `delay` steps between observation and retraining.
pub struct LoopRunner {
    ai: Box<dyn AiSystem>,
    population: Box<dyn UserPopulation>,
    filter: Box<dyn FeedbackFilter>,
    delay: usize,
    pending: VecDeque<Feedback>,
}

impl LoopRunner {
    /// Creates a runner. `delay = 0` retrains on the same step's feedback;
    /// `delay = 1` reproduces the paper's "with some delay, their actions
    /// ... are utilized in retraining".
    pub fn new(
        ai: Box<dyn AiSystem>,
        population: Box<dyn UserPopulation>,
        filter: Box<dyn FeedbackFilter>,
        delay: usize,
    ) -> Self {
        LoopRunner {
            ai,
            population,
            filter,
            delay,
            pending: VecDeque::new(),
        }
    }

    /// The configured delay.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Runs `steps` passes of the loop, returning the full telemetry.
    pub fn run(&mut self, steps: usize, rng: &mut SimRng) -> LoopRecord {
        let n = self.population.user_count();
        let mut record = LoopRecord::new(n);

        for k in 0..steps {
            let visible = self.population.observe(k, rng);
            debug_assert_eq!(visible.len(), n, "observe must return N feature rows");
            let signals = self.ai.signals(k, &visible);
            assert_eq!(signals.len(), n, "AiSystem must emit one signal per user");
            let actions = self.population.respond(k, &signals, rng);
            assert_eq!(actions.len(), n, "population must emit one action per user");

            let feedback = self.filter.apply(k, &visible, &signals, &actions);
            record.push_step(&signals, &actions, &feedback.per_user);

            self.pending.push_back(feedback);
            if self.pending.len() > self.delay {
                let due = self.pending.pop_front().expect("non-empty by check");
                self.ai.retrain(k, &due);
            }
        }
        record
    }

    /// Access to the AI system (e.g. to inspect the final model).
    pub fn ai(&self) -> &dyn AiSystem {
        self.ai.as_ref()
    }

    /// Access to the population.
    pub fn population(&self) -> &dyn UserPopulation {
        self.population.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// AI that broadcasts its internal level and tracks feedback count.
    struct CountingAi {
        level: f64,
        retrain_steps: Vec<usize>,
    }

    impl AiSystem for CountingAi {
        fn signals(&mut self, _k: usize, visible: &[Vec<f64>]) -> Vec<f64> {
            vec![self.level; visible.len()]
        }
        fn retrain(&mut self, _k: usize, feedback: &Feedback) {
            self.retrain_steps.push(feedback.step);
            self.level = feedback.aggregate;
        }
    }

    struct DeterministicUsers {
        n: usize,
    }

    impl UserPopulation for DeterministicUsers {
        fn user_count(&self) -> usize {
            self.n
        }
        fn observe(&mut self, k: usize, _rng: &mut SimRng) -> Vec<Vec<f64>> {
            (0..self.n).map(|i| vec![(i + k) as f64]).collect()
        }
        fn respond(&mut self, _k: usize, signals: &[f64], _rng: &mut SimRng) -> Vec<f64> {
            signals.iter().map(|&s| s + 1.0).collect()
        }
    }

    fn runner_with_delay(delay: usize) -> LoopRunner {
        LoopRunner::new(
            Box::new(CountingAi {
                level: 0.0,
                retrain_steps: Vec::new(),
            }),
            Box::new(DeterministicUsers { n: 3 }),
            Box::new(MeanFilter::default()),
            delay,
        )
    }

    #[test]
    fn record_dimensions() {
        let mut runner = runner_with_delay(1);
        let mut rng = SimRng::new(1);
        let record = runner.run(10, &mut rng);
        assert_eq!(record.steps(), 10);
        assert_eq!(record.user_count(), 3);
        assert_eq!(record.signals(0).len(), 3);
        assert_eq!(record.actions(9).len(), 3);
    }

    #[test]
    fn delay_line_shifts_feedback() {
        // With delay d, the feedback absorbed at step k is from step k - d.
        for delay in [0usize, 1, 3] {
            let mut ai = CountingAi {
                level: 0.0,
                retrain_steps: Vec::new(),
            };
            let mut population = DeterministicUsers { n: 2 };
            let mut filter = MeanFilter::default();
            let mut pending: VecDeque<Feedback> = VecDeque::new();
            let mut rng = SimRng::new(2);
            // Manual replica of the runner to introspect the AI after.
            for k in 0..8 {
                let visible = population.observe(k, &mut rng);
                let signals = ai.signals(k, &visible);
                let actions = population.respond(k, &signals, &mut rng);
                let feedback = filter.apply(k, &visible, &signals, &actions);
                pending.push_back(feedback);
                if pending.len() > delay {
                    let due = pending.pop_front().unwrap();
                    ai.retrain(k, &due);
                }
            }
            let expected: Vec<usize> = (0..(8 - delay)).collect();
            assert_eq!(ai.retrain_steps, expected, "delay {delay}");
        }
    }

    #[test]
    fn mean_filter_accumulates_per_user() {
        let mut f = MeanFilter::default();
        let visible = vec![vec![], vec![]];
        let signals = vec![0.0, 0.0];
        let f1 = f.apply(0, &visible, &signals, &[1.0, 0.0]);
        assert_eq!(f1.per_user, vec![1.0, 0.0]);
        assert_eq!(f1.aggregate, 0.5);
        let f2 = f.apply(1, &visible, &signals, &[0.0, 0.0]);
        assert_eq!(f2.per_user, vec![0.5, 0.0]);
        assert_eq!(f2.aggregate, 0.0);
        assert_eq!(f2.step, 1);
        assert_eq!(f2.actions, vec![0.0, 0.0]);
    }

    #[test]
    fn loop_converges_to_fixed_point() {
        // level' = mean(level + 1) = level + 1 per retrain... this diverges;
        // instead verify the recorded dynamics are consistent: signal at
        // step k equals aggregate of step k - 1 - delay... Simply verify
        // signal(k) = action(k) - 1 for every step (user responds s + 1).
        let mut runner = runner_with_delay(1);
        let mut rng = SimRng::new(3);
        let record = runner.run(20, &mut rng);
        for k in 0..20 {
            for i in 0..3 {
                assert!((record.actions(k)[i] - record.signals(k)[i] - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one signal per user")]
    fn mismatched_ai_is_caught() {
        struct BadAi;
        impl AiSystem for BadAi {
            fn signals(&mut self, _k: usize, _visible: &[Vec<f64>]) -> Vec<f64> {
                vec![0.0] // wrong length
            }
            fn retrain(&mut self, _k: usize, _feedback: &Feedback) {}
        }
        let mut runner = LoopRunner::new(
            Box::new(BadAi),
            Box::new(DeterministicUsers { n: 3 }),
            Box::new(MeanFilter::default()),
            0,
        );
        runner.run(1, &mut SimRng::new(0));
    }
}
