//! Telemetry of a closed-loop run.
//!
//! [`LoopRecord`] stores its per-step matrices **flat** (one contiguous
//! `Vec<f64>` per channel, row-major over steps) so recording a step is a
//! bounds-checked `extend_from_slice` with no per-step allocation once
//! capacity is reserved, and step slices come back as contiguous memory.

use crate::features::FeatureMatrix;
use eqimpact_stats::json::{Json, ToJson};

/// An observer of the loop's raw per-step telemetry, fed by
/// [`LoopRunner::run_with_sink`](crate::closed_loop::LoopRunner::run_with_sink)
/// and its sharded twin *in addition to* the [`LoopRecord`] they return.
///
/// A sink sees strictly more than the record: the visible features of
/// every step (which the record drops), so a trace store can capture
/// everything needed to re-drive the loop without re-simulating the
/// population. Both runners call [`Self::on_step`] at the step barrier,
/// after the filter ran — sequentially and in step order, regardless of
/// the shard count.
///
/// The unit type `()` is the no-op sink (what the plain `run` methods
/// use); `Box<dyn StepSink + Send>` forwards, so type-erased sinks plug
/// into the generic runners.
pub trait StepSink {
    /// Optional per-user group metadata (e.g. race per user), delivered
    /// by the workload once, before the first step. Defaults to a no-op.
    fn on_groups(&mut self, labels: &[&str], codes: &[u32]) {
        let _ = (labels, codes);
    }

    /// One completed step: the features the AI saw, the signals it
    /// broadcast, the population's actions, and the filter's per-user
    /// output.
    fn on_step(
        &mut self,
        k: usize,
        visible: &FeatureMatrix,
        signals: &[f64],
        actions: &[f64],
        filtered: &[f64],
    );

    /// Whether this sink wants per-retrain model checkpoints. The
    /// runners only ask the AI system to capture its state when this
    /// returns `true` (checkpoint capture is not free), and only sinks
    /// that return `true` receive [`Self::on_checkpoint`] calls.
    fn wants_checkpoints(&self) -> bool {
        false
    }

    /// One model checkpoint, captured right after the retrain of step
    /// `k`'s delayed feedback. Called at the step barrier like
    /// [`Self::on_step`], after the `on_step` of the same `k`. Defaults
    /// to a no-op.
    fn on_checkpoint(&mut self, k: usize, checkpoint: &crate::checkpoint::ModelCheckpoint) {
        let _ = (k, checkpoint);
    }
}

impl StepSink for () {
    fn on_step(
        &mut self,
        _k: usize,
        _visible: &FeatureMatrix,
        _signals: &[f64],
        _actions: &[f64],
        _filtered: &[f64],
    ) {
    }
}

impl<T: StepSink + ?Sized> StepSink for Box<T> {
    fn on_groups(&mut self, labels: &[&str], codes: &[u32]) {
        (**self).on_groups(labels, codes)
    }
    fn on_step(
        &mut self,
        k: usize,
        visible: &FeatureMatrix,
        signals: &[f64],
        actions: &[f64],
        filtered: &[f64],
    ) {
        (**self).on_step(k, visible, signals, actions, filtered)
    }
    fn wants_checkpoints(&self) -> bool {
        (**self).wants_checkpoints()
    }
    fn on_checkpoint(&mut self, k: usize, checkpoint: &crate::checkpoint::ModelCheckpoint) {
        (**self).on_checkpoint(k, checkpoint)
    }
}

/// How much telemetry [`LoopRecord`] keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordPolicy {
    /// Keep every per-user series (signals, actions, filtered values).
    #[default]
    Full,
    /// Keep per-step aggregates only (mean action per step). Memory is
    /// `O(steps)` instead of `O(steps x users)` — the production setting
    /// for million-user populations.
    Thin,
}

/// The record of a loop run: per-step signals, actions, and filtered
/// per-user values (under [`RecordPolicy::Full`]), with derived Cesàro
/// trajectories, or per-step aggregates only (under
/// [`RecordPolicy::Thin`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LoopRecord {
    user_count: usize,
    steps: usize,
    policy: RecordPolicy,
    /// Flat `steps x user_count`: `signals[k * n + i]` = π(k, i).
    signals: Vec<f64>,
    /// Flat `steps x user_count`: `actions[k * n + i]` = y_i(k).
    actions: Vec<f64>,
    /// Flat `steps x user_count`: the filter's per-user output at step k
    /// (e.g. running ADR).
    filtered: Vec<f64>,
    /// Exact aggregate action `Σ_i y_i(k)` per step (kept under every
    /// policy; means derive from it).
    step_action_sums: Vec<f64>,
}

impl LoopRecord {
    /// Creates an empty full-telemetry record for `user_count` users.
    pub fn new(user_count: usize) -> Self {
        LoopRecord::with_policy(user_count, RecordPolicy::Full)
    }

    /// Creates an empty record with an explicit policy.
    pub fn with_policy(user_count: usize, policy: RecordPolicy) -> Self {
        LoopRecord {
            user_count,
            steps: 0,
            policy,
            signals: Vec::new(),
            actions: Vec::new(),
            filtered: Vec::new(),
            step_action_sums: Vec::new(),
        }
    }

    /// Pre-allocates room for `steps` more steps, so recording allocates
    /// at most once up front.
    pub fn reserve(&mut self, steps: usize) {
        if self.policy == RecordPolicy::Full {
            let cells = steps * self.user_count;
            self.signals.reserve(cells);
            self.actions.reserve(cells);
            self.filtered.reserve(cells);
        }
        self.step_action_sums.reserve(steps);
    }

    /// Appends one step of telemetry.
    ///
    /// # Panics
    /// Panics when any slice length differs from the user count.
    pub fn push_step(&mut self, signals: &[f64], actions: &[f64], filtered: &[f64]) {
        assert_eq!(signals.len(), self.user_count, "signals length");
        assert_eq!(actions.len(), self.user_count, "actions length");
        assert_eq!(filtered.len(), self.user_count, "filtered length");
        if self.policy == RecordPolicy::Full {
            self.signals.extend_from_slice(signals);
            self.actions.extend_from_slice(actions);
            self.filtered.extend_from_slice(filtered);
        }
        self.step_action_sums.push(actions.iter().sum());
        self.steps += 1;
    }

    /// Number of recorded steps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.user_count
    }

    /// The record's policy.
    pub fn policy(&self) -> RecordPolicy {
        self.policy
    }

    fn full_slice<'a>(&self, channel: &'a [f64], k: usize, what: &str) -> &'a [f64] {
        assert_eq!(
            self.policy,
            RecordPolicy::Full,
            "{what}: thin records keep per-step aggregates only"
        );
        assert!(k < self.steps, "{what}: step {k} out of {}", self.steps);
        &channel[k * self.user_count..(k + 1) * self.user_count]
    }

    /// Signals of step `k`.
    ///
    /// # Panics
    /// Panics for [`RecordPolicy::Thin`] records or `k` out of range.
    pub fn signals(&self, k: usize) -> &[f64] {
        self.full_slice(&self.signals, k, "signals")
    }

    /// Actions of step `k`.
    ///
    /// # Panics
    /// Panics for [`RecordPolicy::Thin`] records or `k` out of range.
    pub fn actions(&self, k: usize) -> &[f64] {
        self.full_slice(&self.actions, k, "actions")
    }

    /// Filtered per-user values of step `k`.
    ///
    /// # Panics
    /// Panics for [`RecordPolicy::Thin`] records or `k` out of range.
    pub fn filtered(&self, k: usize) -> &[f64] {
        self.full_slice(&self.filtered, k, "filtered")
    }

    fn user_series(&self, channel: &[f64], i: usize, what: &str) -> Vec<f64> {
        assert_eq!(
            self.policy,
            RecordPolicy::Full,
            "{what}: thin records keep per-step aggregates only"
        );
        assert!(
            i < self.user_count,
            "{what}: user {i} out of {}",
            self.user_count
        );
        (0..self.steps)
            .map(|k| channel[k * self.user_count + i])
            .collect()
    }

    /// The action time series of user `i`.
    pub fn user_actions(&self, i: usize) -> Vec<f64> {
        self.user_series(&self.actions, i, "user_actions")
    }

    /// The signal time series of user `i`.
    pub fn user_signals(&self, i: usize) -> Vec<f64> {
        self.user_series(&self.signals, i, "user_signals")
    }

    /// The filtered time series of user `i` (e.g. `{ADR_i(k)}_k`).
    pub fn user_filtered(&self, i: usize) -> Vec<f64> {
        self.user_series(&self.filtered, i, "user_filtered")
    }

    /// Cesàro (running-average) trajectory of user `i`'s actions — the
    /// quantity of Def. 3.
    pub fn user_cesaro(&self, i: usize) -> Vec<f64> {
        eqimpact_stats::timeseries::cesaro_trajectory(&self.user_actions(i))
    }

    /// Final Cesàro average per user.
    pub fn final_cesaro(&self) -> Vec<f64> {
        (0..self.user_count)
            .map(|i| {
                let t = self.user_cesaro(i);
                t.last().copied().unwrap_or(f64::NAN)
            })
            .collect()
    }

    /// Aggregate action `y(k) = Σ_i y_i(k)` per step (exact sums).
    pub fn aggregate_actions(&self) -> Vec<f64> {
        self.step_action_sums.clone()
    }

    /// Mean action per step (available under every policy).
    pub fn mean_actions(&self) -> Vec<f64> {
        let n = self.user_count;
        self.step_action_sums
            .iter()
            .map(|&s| if n == 0 { 0.0 } else { s / n as f64 })
            .collect()
    }

    /// Serializes the record to a JSON value (see [`Self::from_json`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("user_count", self.user_count.to_json()),
            ("steps", self.steps.to_json()),
            (
                "policy",
                match self.policy {
                    RecordPolicy::Full => "full",
                    RecordPolicy::Thin => "thin",
                }
                .to_json(),
            ),
            ("signals", self.signals.to_json()),
            ("actions", self.actions.to_json()),
            ("filtered", self.filtered.to_json()),
            ("aggregate_actions", self.step_action_sums.to_json()),
        ])
    }

    /// Deserializes a record produced by [`Self::to_json`].
    ///
    /// Non-finite cells are written as `null` by the JSON layer (JSON has
    /// no NaN); this reader maps them back to `f64::NAN`, so a record
    /// containing NaN filter outputs round-trips functionally (note that
    /// `PartialEq` on such records is still `false`, as NaN != NaN).
    pub fn from_json(doc: &Json) -> Result<LoopRecord, String> {
        let field = |name: &str| doc.get(name).ok_or_else(|| format!("missing field {name}"));
        let vec_field = |name: &str| -> Result<Vec<f64>, String> {
            field(name)?
                .as_arr()
                .ok_or_else(|| format!("field {name} is not an array"))?
                .iter()
                .map(|cell| match cell {
                    Json::Num(x) => Ok(*x),
                    Json::Null => Ok(f64::NAN),
                    _ => Err(format!("field {name} holds a non-numeric element")),
                })
                .collect()
        };
        let user_count = field("user_count")?
            .as_usize()
            .ok_or("user_count is not an integer")?;
        let steps = field("steps")?
            .as_usize()
            .ok_or("steps is not an integer")?;
        let policy = match field("policy")?.as_str() {
            Some("full") => RecordPolicy::Full,
            Some("thin") => RecordPolicy::Thin,
            _ => return Err("policy must be \"full\" or \"thin\"".to_string()),
        };
        let record = LoopRecord {
            user_count,
            steps,
            policy,
            signals: vec_field("signals")?,
            actions: vec_field("actions")?,
            filtered: vec_field("filtered")?,
            step_action_sums: vec_field("aggregate_actions")?,
        };
        let cells = match policy {
            RecordPolicy::Full => steps * user_count,
            RecordPolicy::Thin => 0,
        };
        if record.signals.len() != cells
            || record.actions.len() != cells
            || record.filtered.len() != cells
            || record.step_action_sums.len() != steps
        {
            return Err("channel lengths inconsistent with steps x user_count".to_string());
        }
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> LoopRecord {
        let mut r = LoopRecord::new(2);
        r.push_step(&[1.0, 1.0], &[1.0, 0.0], &[1.0, 0.0]);
        r.push_step(&[0.5, 0.5], &[0.0, 0.0], &[0.5, 0.0]);
        r.push_step(&[0.2, 0.2], &[1.0, 1.0], &[2.0 / 3.0, 1.0 / 3.0]);
        r
    }

    #[test]
    fn dimensions_and_access() {
        let r = sample_record();
        assert_eq!(r.steps(), 3);
        assert_eq!(r.user_count(), 2);
        assert_eq!(r.policy(), RecordPolicy::Full);
        assert_eq!(r.signals(1), &[0.5, 0.5]);
        assert_eq!(r.actions(2), &[1.0, 1.0]);
        assert_eq!(r.filtered(0), &[1.0, 0.0]);
    }

    #[test]
    fn per_user_series() {
        let r = sample_record();
        assert_eq!(r.user_actions(0), vec![1.0, 0.0, 1.0]);
        assert_eq!(r.user_signals(1), vec![1.0, 0.5, 0.2]);
        assert_eq!(r.user_filtered(0), vec![1.0, 0.5, 2.0 / 3.0]);
    }

    #[test]
    fn cesaro_trajectories() {
        let r = sample_record();
        let c0 = r.user_cesaro(0);
        assert_eq!(c0, vec![1.0, 0.5, 2.0 / 3.0]);
        let finals = r.final_cesaro();
        assert!((finals[0] - 2.0 / 3.0).abs() < 1e-15);
        assert!((finals[1] - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn aggregates() {
        let r = sample_record();
        assert_eq!(r.aggregate_actions(), vec![1.0, 0.0, 2.0]);
        assert_eq!(r.mean_actions(), vec![0.5, 0.0, 1.0]);
    }

    #[test]
    fn empty_record() {
        let r = LoopRecord::new(4);
        assert_eq!(r.steps(), 0);
        assert!(r.final_cesaro().iter().all(|v| v.is_nan()));
        assert!(r.aggregate_actions().is_empty());
    }

    #[test]
    fn thin_policy_keeps_aggregates_only() {
        let mut r = LoopRecord::with_policy(2, RecordPolicy::Thin);
        r.push_step(&[1.0, 1.0], &[1.0, 0.0], &[1.0, 0.0]);
        r.push_step(&[1.0, 1.0], &[1.0, 1.0], &[1.0, 0.5]);
        assert_eq!(r.steps(), 2);
        assert_eq!(r.mean_actions(), vec![0.5, 1.0]);
        assert_eq!(r.aggregate_actions(), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "aggregates only")]
    fn thin_policy_rejects_per_user_access() {
        let mut r = LoopRecord::with_policy(1, RecordPolicy::Thin);
        r.push_step(&[1.0], &[1.0], &[1.0]);
        r.signals(0);
    }

    #[test]
    fn json_roundtrip_full_and_thin() {
        let full = sample_record();
        let mut thin = LoopRecord::with_policy(2, RecordPolicy::Thin);
        thin.push_step(&[1.0, 0.0], &[1.0, 0.0], &[0.5, 0.5]);
        for record in [full, thin] {
            let text = record.to_json().render_pretty();
            let parsed = eqimpact_stats::json::parse(&text).unwrap();
            let back = LoopRecord::from_json(&parsed).unwrap();
            assert_eq!(back, record);
        }
    }

    #[test]
    fn json_roundtrips_nan_cells_via_null() {
        // Custom filters may emit NaN per-user values (e.g. group
        // trackers over empty sets); those cells serialize as null and
        // must come back as NaN.
        let mut r = LoopRecord::new(1);
        r.push_step(&[1.0], &[0.5], &[f64::NAN]);
        let text = r.to_json().render();
        assert!(text.contains("null"), "text = {text}");
        let back = LoopRecord::from_json(&eqimpact_stats::json::parse(&text).unwrap()).unwrap();
        assert!(back.filtered(0)[0].is_nan());
        assert_eq!(back.actions(0), &[0.5]);
    }

    #[test]
    fn json_rejects_inconsistent_lengths() {
        let mut doc = sample_record().to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "steps" {
                    *v = Json::Num(99.0);
                }
            }
        }
        assert!(LoopRecord::from_json(&doc).is_err());
    }

    #[test]
    #[should_panic(expected = "actions length")]
    fn push_checks_lengths() {
        let mut r = LoopRecord::new(2);
        r.push_step(&[0.0, 0.0], &[0.0], &[0.0, 0.0]);
    }
}
