//! Telemetry of a closed-loop run.

use serde::{Deserialize, Serialize};

/// The full record of a loop run: per-step signals, actions, and filtered
/// per-user values, with derived Cesàro trajectories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopRecord {
    user_count: usize,
    /// `signals[k][i]` = π(k, i).
    signals: Vec<Vec<f64>>,
    /// `actions[k][i]` = y_i(k).
    actions: Vec<Vec<f64>>,
    /// `filtered[k][i]` = the filter's per-user output at step k (e.g.
    /// running ADR).
    filtered: Vec<Vec<f64>>,
}

impl LoopRecord {
    /// Creates an empty record for `user_count` users.
    pub fn new(user_count: usize) -> Self {
        LoopRecord {
            user_count,
            signals: Vec::new(),
            actions: Vec::new(),
            filtered: Vec::new(),
        }
    }

    /// Appends one step of telemetry.
    ///
    /// # Panics
    /// Panics when any slice length differs from the user count.
    pub fn push_step(&mut self, signals: &[f64], actions: &[f64], filtered: &[f64]) {
        assert_eq!(signals.len(), self.user_count, "signals length");
        assert_eq!(actions.len(), self.user_count, "actions length");
        assert_eq!(filtered.len(), self.user_count, "filtered length");
        self.signals.push(signals.to_vec());
        self.actions.push(actions.to_vec());
        self.filtered.push(filtered.to_vec());
    }

    /// Number of recorded steps.
    pub fn steps(&self) -> usize {
        self.signals.len()
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.user_count
    }

    /// Signals of step `k`.
    pub fn signals(&self, k: usize) -> &[f64] {
        &self.signals[k]
    }

    /// Actions of step `k`.
    pub fn actions(&self, k: usize) -> &[f64] {
        &self.actions[k]
    }

    /// Filtered per-user values of step `k`.
    pub fn filtered(&self, k: usize) -> &[f64] {
        &self.filtered[k]
    }

    /// The action time series of user `i`.
    pub fn user_actions(&self, i: usize) -> Vec<f64> {
        self.actions.iter().map(|row| row[i]).collect()
    }

    /// The signal time series of user `i`.
    pub fn user_signals(&self, i: usize) -> Vec<f64> {
        self.signals.iter().map(|row| row[i]).collect()
    }

    /// The filtered time series of user `i` (e.g. `{ADR_i(k)}_k`).
    pub fn user_filtered(&self, i: usize) -> Vec<f64> {
        self.filtered.iter().map(|row| row[i]).collect()
    }

    /// Cesàro (running-average) trajectory of user `i`'s actions — the
    /// quantity of Def. 3.
    pub fn user_cesaro(&self, i: usize) -> Vec<f64> {
        eqimpact_stats::timeseries::cesaro_trajectory(&self.user_actions(i))
    }

    /// Final Cesàro average per user.
    pub fn final_cesaro(&self) -> Vec<f64> {
        (0..self.user_count)
            .map(|i| {
                let t = self.user_cesaro(i);
                t.last().copied().unwrap_or(f64::NAN)
            })
            .collect()
    }

    /// Aggregate action `y(k) = Σ_i y_i(k)` per step.
    pub fn aggregate_actions(&self) -> Vec<f64> {
        self.actions.iter().map(|row| row.iter().sum()).collect()
    }

    /// Mean action per step.
    pub fn mean_actions(&self) -> Vec<f64> {
        self.actions
            .iter()
            .map(|row| row.iter().sum::<f64>() / row.len().max(1) as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> LoopRecord {
        let mut r = LoopRecord::new(2);
        r.push_step(&[1.0, 1.0], &[1.0, 0.0], &[1.0, 0.0]);
        r.push_step(&[0.5, 0.5], &[0.0, 0.0], &[0.5, 0.0]);
        r.push_step(&[0.2, 0.2], &[1.0, 1.0], &[2.0 / 3.0, 1.0 / 3.0]);
        r
    }

    #[test]
    fn dimensions_and_access() {
        let r = sample_record();
        assert_eq!(r.steps(), 3);
        assert_eq!(r.user_count(), 2);
        assert_eq!(r.signals(1), &[0.5, 0.5]);
        assert_eq!(r.actions(2), &[1.0, 1.0]);
        assert_eq!(r.filtered(0), &[1.0, 0.0]);
    }

    #[test]
    fn per_user_series() {
        let r = sample_record();
        assert_eq!(r.user_actions(0), vec![1.0, 0.0, 1.0]);
        assert_eq!(r.user_signals(1), vec![1.0, 0.5, 0.2]);
        assert_eq!(r.user_filtered(0), vec![1.0, 0.5, 2.0 / 3.0]);
    }

    #[test]
    fn cesaro_trajectories() {
        let r = sample_record();
        let c0 = r.user_cesaro(0);
        assert_eq!(c0, vec![1.0, 0.5, 2.0 / 3.0]);
        let finals = r.final_cesaro();
        assert!((finals[0] - 2.0 / 3.0).abs() < 1e-15);
        assert!((finals[1] - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn aggregates() {
        let r = sample_record();
        assert_eq!(r.aggregate_actions(), vec![1.0, 0.0, 2.0]);
        assert_eq!(r.mean_actions(), vec![0.5, 0.0, 1.0]);
    }

    #[test]
    fn empty_record() {
        let r = LoopRecord::new(4);
        assert_eq!(r.steps(), 0);
        assert!(r.final_cesaro().iter().all(|v| v.is_nan()));
        assert!(r.aggregate_actions().is_empty());
    }

    #[test]
    #[should_panic(expected = "actions length")]
    fn push_checks_lengths() {
        let mut r = LoopRecord::new(2);
        r.push_step(&[0.0, 0.0], &[0.0], &[0.0, 0.0]);
    }
}
