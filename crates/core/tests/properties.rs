//! Property-based tests for the closed-loop core.

use eqimpact_core::closed_loop::{
    AiSystem, DynLoopRunner, Feedback, FeedbackFilter, LoopBuilder, LoopRunner, MeanFilter,
    UserPopulation,
};
use eqimpact_core::fairness::demographic_parity;
use eqimpact_core::features::FeatureMatrix;
use eqimpact_core::impact::equal_impact_report;
use eqimpact_core::recorder::LoopRecord;
use eqimpact_core::treatment::{classes_by_attribute, equal_treatment_report};
use eqimpact_stats::SimRng;
use proptest::prelude::*;

struct ConstAi(f64);
impl AiSystem for ConstAi {
    fn signals(&mut self, _k: usize, visible: &FeatureMatrix) -> Vec<f64> {
        vec![self.0; visible.row_count()]
    }
    fn retrain(&mut self, _k: usize, _f: &Feedback) {}
}

/// Same behaviour as [`ConstAi`] but through the in-place hook, to cross
/// the two implementation styles in the equivalence test.
struct ConstAiInPlace(f64);
impl AiSystem for ConstAiInPlace {
    fn signals_into(&mut self, _k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        out.clear();
        out.resize(visible.row_count(), self.0);
    }
    fn retrain(&mut self, _k: usize, _f: &Feedback) {}
}

struct CoinUsers {
    n: usize,
    p: f64,
}
impl UserPopulation for CoinUsers {
    fn user_count(&self) -> usize {
        self.n
    }
    fn observe(&mut self, _k: usize, _rng: &mut SimRng) -> FeatureMatrix {
        FeatureMatrix::zeros(self.n, 0)
    }
    fn respond(&mut self, _k: usize, signals: &[f64], rng: &mut SimRng) -> Vec<f64> {
        signals
            .iter()
            .map(|_| if rng.bernoulli(self.p) { 1.0 } else { 0.0 })
            .collect()
    }
}

proptest! {
    #[test]
    fn loop_record_dimensions_always_consistent(
        n in 1usize..20,
        steps in 1usize..30,
        seed in 0u64..100,
        signal in -2.0f64..2.0,
    ) {
        let mut runner = LoopBuilder::new(ConstAi(signal), CoinUsers { n, p: 0.4 })
            .filter(MeanFilter::default())
            .delay(1)
            .build();
        let record = runner.run(steps, &mut SimRng::new(seed));
        prop_assert_eq!(record.steps(), steps);
        prop_assert_eq!(record.user_count(), n);
        for k in 0..steps {
            prop_assert_eq!(record.signals(k).len(), n);
            prop_assert_eq!(record.actions(k).len(), n);
            prop_assert_eq!(record.filtered(k).len(), n);
        }
        // Cesàro trajectories end at the final running mean.
        for i in 0..n {
            let actions = record.user_actions(i);
            let mean: f64 = actions.iter().sum::<f64>() / steps as f64;
            let cesaro = record.user_cesaro(i);
            prop_assert!((cesaro.last().unwrap() - mean).abs() < 1e-12);
        }
    }

    /// The tentpole's contract: the generic (statically dispatched,
    /// in-place) runner and the fully boxed [`DynLoopRunner`] produce
    /// **bit-identical** records for the same seed — across both
    /// implementation styles of the AI block.
    #[test]
    fn generic_and_dyn_runners_bit_identical(
        n in 1usize..20,
        steps in 1usize..30,
        delay in 0usize..4,
        seed in 0u64..100,
        signal in -2.0f64..2.0,
    ) {
        let mut generic = LoopBuilder::new(ConstAiInPlace(signal), CoinUsers { n, p: 0.4 })
            .filter(MeanFilter::default())
            .delay(delay)
            .build();
        let mut boxed: DynLoopRunner = LoopRunner::new(
            Box::new(ConstAi(signal)),
            Box::new(CoinUsers { n, p: 0.4 }),
            Box::new(MeanFilter::default()),
            delay,
        );
        let a = generic.run(steps, &mut SimRng::new(seed));
        let b = boxed.run(steps, &mut SimRng::new(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn feature_matrix_roundtrips_nested(
        rows in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3), 0..12),
    ) {
        let m = FeatureMatrix::from_nested(&rows);
        prop_assert_eq!(m.row_count(), rows.len());
        let mut gathered = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            m.copy_row_into(i, &mut gathered);
            prop_assert_eq!(&gathered[..], &row[..]);
            for (j, &v) in row.iter().enumerate() {
                prop_assert_eq!(m.get(i, j), v);
            }
        }
        prop_assert_eq!(m.to_nested(), rows);
    }

    #[test]
    fn feature_matrix_fill_from_is_copy(
        a in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 2), 1..8),
        b in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 4), 1..8),
    ) {
        let src = FeatureMatrix::from_nested(&a);
        let mut dst = FeatureMatrix::from_nested(&b);
        dst.fill_from(&src);
        prop_assert_eq!(dst, src);
    }

    #[test]
    fn constant_signals_always_pass_treatment_signal_check(
        n in 2usize..15,
        steps in 1usize..20,
        seed in 0u64..50,
    ) {
        let mut runner = LoopBuilder::new(ConstAi(0.7), CoinUsers { n, p: 0.5 })
            .filter(MeanFilter::default())
            .delay(0)
            .build();
        let record = runner.run(steps, &mut SimRng::new(seed));
        let report = equal_treatment_report(&record, 1e-9);
        prop_assert!(report.same_signal);
        prop_assert_eq!(report.max_signal_spread, 0.0);
    }

    #[test]
    fn impact_limits_are_within_action_range(
        n in 1usize..10,
        steps in 5usize..40,
        seed in 0u64..50,
    ) {
        let mut runner = LoopBuilder::new(ConstAi(1.0), CoinUsers { n, p: 0.3 })
            .filter(MeanFilter::default())
            .delay(0)
            .build();
        let record = runner.run(steps, &mut SimRng::new(seed));
        let report = equal_impact_report(&record, 0.5, 1.0);
        for &l in &report.limits {
            prop_assert!((0.0..=1.0).contains(&l));
        }
        prop_assert!(report.max_spread <= 1.0 + 1e-12);
    }

    #[test]
    fn classes_by_attribute_covers_all_users(attrs in prop::collection::vec(0u32..5, 1..40)) {
        let classes = classes_by_attribute(&attrs);
        let total: usize = classes.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, attrs.len());
        // Within a class, all attributes equal.
        for class in &classes {
            let a0 = attrs[class[0]];
            prop_assert!(class.iter().all(|&i| attrs[i] == a0));
        }
    }

    #[test]
    fn demographic_parity_rates_are_probabilities(
        steps in 1usize..20,
        seed in 0u64..50,
    ) {
        let n = 8;
        let mut runner = LoopBuilder::new(ConstAi(1.0), CoinUsers { n, p: 0.5 })
            .filter(MeanFilter::default())
            .delay(0)
            .build();
        let record = runner.run(steps, &mut SimRng::new(seed));
        let groups = vec![vec![0, 1, 2], vec![3, 4], vec![5, 6, 7]];
        let report = demographic_parity(&record, &groups, 0.5);
        for r in &report.group_rates {
            prop_assert!((0.0..=1.0).contains(&r.rate));
            prop_assert_eq!(r.count, r.count); // counted
        }
        prop_assert!(report.max_gap >= 0.0);
    }

    #[test]
    fn mean_filter_per_user_matches_cesaro(values in prop::collection::vec(0.0f64..1.0, 1..25)) {
        let mut f = MeanFilter::default();
        let visible = FeatureMatrix::zeros(1, 0);
        let mut last = f64::NAN;
        for (k, &v) in values.iter().enumerate() {
            let fb = f.apply(k, &visible, &[1.0], &[v]);
            last = fb.per_user[0];
        }
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((last - mean).abs() < 1e-12);
    }

    #[test]
    fn record_json_roundtrip(
        n in 1usize..6,
        steps in 0usize..10,
        seed in 0u64..20,
    ) {
        let mut record = LoopRecord::new(n);
        let mut rng = SimRng::new(seed);
        for _ in 0..steps {
            let s: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
            let a: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
            let f: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
            record.push_step(&s, &a, &f);
        }
        let text = record.to_json().render();
        let back = LoopRecord::from_json(&eqimpact_stats::json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, record);
    }
}
