//! Property-based tests for the closed-loop core.

use eqimpact_core::closed_loop::{
    AiSystem, Feedback, FeedbackFilter, LoopRunner, MeanFilter, UserPopulation,
};
use eqimpact_core::fairness::demographic_parity;
use eqimpact_core::impact::equal_impact_report;
use eqimpact_core::recorder::LoopRecord;
use eqimpact_core::treatment::{classes_by_attribute, equal_treatment_report};
use eqimpact_stats::SimRng;
use proptest::prelude::*;

struct ConstAi(f64);
impl AiSystem for ConstAi {
    fn signals(&mut self, _k: usize, visible: &[Vec<f64>]) -> Vec<f64> {
        vec![self.0; visible.len()]
    }
    fn retrain(&mut self, _k: usize, _f: &Feedback) {}
}

struct CoinUsers {
    n: usize,
    p: f64,
}
impl UserPopulation for CoinUsers {
    fn user_count(&self) -> usize {
        self.n
    }
    fn observe(&mut self, _k: usize, _rng: &mut SimRng) -> Vec<Vec<f64>> {
        vec![vec![]; self.n]
    }
    fn respond(&mut self, _k: usize, signals: &[f64], rng: &mut SimRng) -> Vec<f64> {
        signals
            .iter()
            .map(|_| if rng.bernoulli(self.p) { 1.0 } else { 0.0 })
            .collect()
    }
}

proptest! {
    #[test]
    fn loop_record_dimensions_always_consistent(
        n in 1usize..20,
        steps in 1usize..30,
        seed in 0u64..100,
        signal in -2.0f64..2.0,
    ) {
        let mut runner = LoopRunner::new(
            Box::new(ConstAi(signal)),
            Box::new(CoinUsers { n, p: 0.4 }),
            Box::new(MeanFilter::default()),
            1,
        );
        let record = runner.run(steps, &mut SimRng::new(seed));
        prop_assert_eq!(record.steps(), steps);
        prop_assert_eq!(record.user_count(), n);
        for k in 0..steps {
            prop_assert_eq!(record.signals(k).len(), n);
            prop_assert_eq!(record.actions(k).len(), n);
            prop_assert_eq!(record.filtered(k).len(), n);
        }
        // Cesàro trajectories end at the final running mean.
        for i in 0..n {
            let actions = record.user_actions(i);
            let mean: f64 = actions.iter().sum::<f64>() / steps as f64;
            let cesaro = record.user_cesaro(i);
            prop_assert!((cesaro.last().unwrap() - mean).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_signals_always_pass_treatment_signal_check(
        n in 2usize..15,
        steps in 1usize..20,
        seed in 0u64..50,
    ) {
        let mut runner = LoopRunner::new(
            Box::new(ConstAi(0.7)),
            Box::new(CoinUsers { n, p: 0.5 }),
            Box::new(MeanFilter::default()),
            0,
        );
        let record = runner.run(steps, &mut SimRng::new(seed));
        let report = equal_treatment_report(&record, 1e-9);
        prop_assert!(report.same_signal);
        prop_assert_eq!(report.max_signal_spread, 0.0);
    }

    #[test]
    fn impact_limits_are_within_action_range(
        n in 1usize..10,
        steps in 5usize..40,
        seed in 0u64..50,
    ) {
        let mut runner = LoopRunner::new(
            Box::new(ConstAi(1.0)),
            Box::new(CoinUsers { n, p: 0.3 }),
            Box::new(MeanFilter::default()),
            0,
        );
        let record = runner.run(steps, &mut SimRng::new(seed));
        let report = equal_impact_report(&record, 0.5, 1.0);
        for &l in &report.limits {
            prop_assert!((0.0..=1.0).contains(&l));
        }
        prop_assert!(report.max_spread <= 1.0 + 1e-12);
    }

    #[test]
    fn classes_by_attribute_covers_all_users(attrs in prop::collection::vec(0u32..5, 1..40)) {
        let classes = classes_by_attribute(&attrs);
        let total: usize = classes.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, attrs.len());
        // Within a class, all attributes equal.
        for class in &classes {
            let a0 = attrs[class[0]];
            prop_assert!(class.iter().all(|&i| attrs[i] == a0));
        }
    }

    #[test]
    fn demographic_parity_rates_are_probabilities(
        steps in 1usize..20,
        seed in 0u64..50,
    ) {
        let n = 8;
        let mut runner = LoopRunner::new(
            Box::new(ConstAi(1.0)),
            Box::new(CoinUsers { n, p: 0.5 }),
            Box::new(MeanFilter::default()),
            0,
        );
        let record = runner.run(steps, &mut SimRng::new(seed));
        let groups = vec![vec![0, 1, 2], vec![3, 4], vec![5, 6, 7]];
        let report = demographic_parity(&record, &groups, 0.5);
        for r in &report.group_rates {
            prop_assert!((0.0..=1.0).contains(&r.rate));
            prop_assert_eq!(r.count, r.count); // counted
        }
        prop_assert!(report.max_gap >= 0.0);
    }

    #[test]
    fn mean_filter_per_user_matches_cesaro(values in prop::collection::vec(0.0f64..1.0, 1..25)) {
        let mut f = MeanFilter::default();
        let visible = vec![vec![]];
        let mut last = f64::NAN;
        for (k, &v) in values.iter().enumerate() {
            let fb = f.apply(k, &visible, &[1.0], &[v]);
            last = fb.per_user[0];
        }
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((last - mean).abs() < 1e-12);
    }

    #[test]
    fn record_serde_roundtrip(
        n in 1usize..6,
        steps in 0usize..10,
        seed in 0u64..20,
    ) {
        let mut record = LoopRecord::new(n);
        let mut rng = SimRng::new(seed);
        for _ in 0..steps {
            let s: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
            let a: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
            let f: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
            record.push_step(&s, &a, &f);
        }
        let json = serde_json::to_string(&record).unwrap();
        let back: LoopRecord = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, record);
    }
}
