//! Dense linear algebra substrate for the `eqimpact` workspace.
//!
//! The workspace deliberately avoids heavyweight numeric dependencies: the
//! linear algebra actually required by the paper — small dense systems for
//! iteratively-reweighted least squares (logistic regression), matrix powers
//! and spectral radii for primitivity / contractivity analysis of Markov
//! systems — fits in a few hundred audited lines.
//!
//! The central types are [`Vector`] and [`Matrix`] (row-major, `f64`).
//! Factorizations live in [`lu`] and [`cholesky`]; iterative spectral
//! methods in [`power`]. Chunked batch kernels for the columnar feature
//! plane (slice-level `axpy`/`offset`/`fill`) live in [`kernels`].
//!
//! # Example
//!
//! ```
//! use eqimpact_linalg::{Matrix, Vector};
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
//! let b = Vector::from_slice(&[1.0, 2.0]);
//! let x = a.solve(&b).unwrap();
//! let r = &a.mat_vec(&x) - &b;
//! assert!(r.norm2() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cholesky;
pub mod error;
pub mod kernels;
pub mod lu;
pub mod matrix;
pub mod norm;
pub mod power;
pub mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use power::{power_iteration, spectral_radius, PowerIterationResult};
pub use vector::Vector;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
