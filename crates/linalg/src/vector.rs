//! Dense `f64` vectors.

use crate::error::LinalgError;
use crate::Result;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense, heap-allocated vector of `f64` values.
///
/// All arithmetic between two vectors requires identical lengths; the
/// operator impls panic on mismatch (consistent with indexing), while the
/// checked methods (`checked_add`, `dot`, ...) return [`LinalgError`].
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector of `n` ones.
    pub fn ones(n: usize) -> Self {
        Vector { data: vec![1.0; n] }
    }

    /// Creates a vector filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector {
            data: vec![value; n],
        }
    }

    /// Builds a vector by copying a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Vector {
            data: values.to_vec(),
        }
    }

    /// Builds a vector from an owned `Vec<f64>` without copying.
    pub fn from_vec(values: Vec<f64>) -> Self {
        Vector { data: values }
    }

    /// Builds a vector from a function of the index.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> f64) -> Self {
        Vector {
            data: (0..n).map(f).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has zero entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Dot product; errors on length mismatch.
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "dot",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Euclidean (ℓ²) norm.
    pub fn norm2(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// ℓ¹ norm (sum of absolute values).
    pub fn norm1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// ℓ∞ norm (maximum absolute value); 0 for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean; `NaN` for the empty vector.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            f64::NAN
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Entry-wise scaling in place.
    pub fn scale_mut(&mut self, factor: f64) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Returns an entry-wise scaled copy.
    pub fn scaled(&self, factor: f64) -> Vector {
        let mut out = self.clone();
        out.scale_mut(factor);
        out
    }

    /// `self += alpha * other` (BLAS `axpy`); errors on length mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) -> Result<()> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "axpy",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Entry-wise (Hadamard) product; errors on length mismatch.
    pub fn hadamard(&self, other: &Vector) -> Result<Vector> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "hadamard",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(Vector::from_vec(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a * b)
                .collect(),
        ))
    }

    /// Applies `f` to every entry, returning a new vector.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Vector {
        Vector::from_vec(self.data.iter().map(|&x| f(x)).collect())
    }

    /// Maximum entry; `-inf` if empty.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum entry; `+inf` if empty.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Checked addition returning a new vector.
    pub fn checked_add(&self, other: &Vector) -> Result<Vector> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "add",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(Vector::from_vec(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        ))
    }

    /// Checked subtraction returning a new vector.
    pub fn checked_sub(&self, other: &Vector) -> Result<Vector> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "sub",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(Vector::from_vec(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        ))
    }

    /// Returns `true` if any entry is `NaN` or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        self.checked_add(rhs).expect("vector add: length mismatch")
    }
}

impl Sub for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        self.checked_sub(rhs).expect("vector sub: length mismatch")
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        self.axpy(1.0, rhs).expect("vector +=: length mismatch");
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        self.axpy(-1.0, rhs).expect("vector -=: length mismatch");
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Vector::from_vec(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = Vector::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v[1], 2.0);
        let z = Vector::zeros(4);
        assert_eq!(z.sum(), 0.0);
        let o = Vector::ones(4);
        assert_eq!(o.sum(), 4.0);
        let f = Vector::from_fn(3, |i| (i * i) as f64);
        assert_eq!(f.as_slice(), &[0.0, 1.0, 4.0]);
        let fill = Vector::filled(2, 7.5);
        assert_eq!(fill.as_slice(), &[7.5, 7.5]);
    }

    #[test]
    fn dot_and_norms() {
        let a = Vector::from_slice(&[3.0, 4.0]);
        let b = Vector::from_slice(&[1.0, 2.0]);
        assert_eq!(a.dot(&b).unwrap(), 11.0);
        assert_eq!(a.norm2(), 5.0);
        assert_eq!(a.norm1(), 7.0);
        assert_eq!(a.norm_inf(), 4.0);
    }

    #[test]
    fn dot_mismatch_errors() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(matches!(
            a.dot(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn axpy_and_hadamard() {
        let mut a = Vector::from_slice(&[1.0, 1.0]);
        let b = Vector::from_slice(&[2.0, 3.0]);
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.as_slice(), &[5.0, 7.0]);
        let h = a.hadamard(&b).unwrap();
        assert_eq!(h.as_slice(), &[10.0, 21.0]);
        assert!(a.axpy(1.0, &Vector::zeros(3)).is_err());
        assert!(a.hadamard(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn map_min_max_mean() {
        let v = Vector::from_slice(&[-2.0, 0.0, 4.0]);
        assert_eq!(v.map(f64::abs).as_slice(), &[2.0, 0.0, 4.0]);
        assert_eq!(v.max(), 4.0);
        assert_eq!(v.min(), -2.0);
        assert!((v.mean() - 2.0 / 3.0).abs() < 1e-15);
        assert!(Vector::zeros(0).mean().is_nan());
    }

    #[test]
    fn non_finite_detection() {
        let mut v = Vector::zeros(2);
        assert!(!v.has_non_finite());
        v[0] = f64::NAN;
        assert!(v.has_non_finite());
        v[0] = f64::INFINITY;
        assert!(v.has_non_finite());
    }

    #[test]
    fn from_iterator_roundtrip() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
        let total: f64 = (&v).into_iter().sum();
        assert_eq!(total, 3.0);
        assert_eq!(v.clone().into_vec(), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn operator_add_panics_on_mismatch() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        let _ = &a + &b;
    }
}
