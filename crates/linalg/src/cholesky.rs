//! Cholesky decomposition for symmetric positive-definite systems.
//!
//! Used by the IRLS solver in `eqimpact-ml`, where the normal-equation
//! matrix `Xᵀ W X` is symmetric positive (semi-)definite; Cholesky is both
//! faster and more numerically honest than LU for this case.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::Result;

/// A Cholesky factorization `A = L Lᵀ` with `L` lower triangular.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (upper triangle is zero).
    l: Matrix,
}

impl Cholesky {
    /// Computes the factorization. Errors for non-square input or when a
    /// leading minor is not positive (matrix not positive definite).
    ///
    /// Only the lower triangle of `a` is read, so callers may pass a matrix
    /// whose upper triangle is stale.
    pub fn decompose(a: &Matrix) -> Result<Cholesky> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { minor: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the precomputed factor.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b.
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * y[j];
            }
            y[i] = acc / self.l[(i, i)];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = y;
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of the original matrix (`2 Σ log L_ii`), always
    /// finite for a successfully factored matrix.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Solves `A x = b` for symmetric positive-definite `A`, adding a small
/// ridge `lambda * I` and retrying when the factorization fails.
///
/// This is the fallback used by IRLS when separation makes `Xᵀ W X`
/// numerically semi-definite. Returns the solution together with the ridge
/// that was finally applied (0.0 when no ridge was needed).
pub fn solve_spd_with_ridge(a: &Matrix, b: &Vector, max_ridge: f64) -> Result<(Vector, f64)> {
    match Cholesky::decompose(a) {
        Ok(ch) => return ch.solve(b).map(|x| (x, 0.0)),
        Err(LinalgError::NotPositiveDefinite { .. }) => {}
        Err(e) => return Err(e),
    }
    let mut ridge = 1e-10 * a.max_abs().max(1.0);
    while ridge <= max_ridge {
        let mut regularized = a.clone();
        for i in 0..a.rows() {
            regularized[(i, i)] += ridge;
        }
        if let Ok(ch) = Cholesky::decompose(&regularized) {
            return ch.solve(b).map(|x| (x, ridge));
        }
        ridge *= 10.0;
    }
    Err(LinalgError::NotPositiveDefinite { minor: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_spd_matrix() {
        let a = Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
        .unwrap();
        let ch = Cholesky::decompose(&a).unwrap();
        // Known factor: L = [[2,0,0],[6,1,0],[-8,5,3]].
        assert!((ch.l()[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((ch.l()[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((ch.l()[(2, 2)] - 3.0).abs() < 1e-12);
        // Reconstruction.
        let rec = ch.l().checked_mul(&ch.l().transpose()).unwrap();
        assert!((&rec - &a).max_abs() < 1e-10);
    }

    #[test]
    fn solve_matches_direct() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = Vector::from_slice(&[3.0, 3.0]);
        let x = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_bad_rhs() {
        assert!(Cholesky::decompose(&Matrix::zeros(2, 3)).is_err());
        let ch = Cholesky::decompose(&Matrix::identity(2)).unwrap();
        assert!(ch.solve(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn log_determinant() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]).unwrap();
        let ch = Cholesky::decompose(&a).unwrap();
        assert!((ch.log_determinant() - 36f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn ridge_fallback_recovers_semidefinite() {
        // Rank-1 PSD matrix: plain Cholesky fails, ridge succeeds.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let b = Vector::from_slice(&[2.0, 2.0]);
        let (x, ridge) = solve_spd_with_ridge(&a, &b, 1.0).unwrap();
        assert!(ridge > 0.0);
        // Residual should be tiny relative to the ridge scale.
        let r = &a.mat_vec(&x) - &b;
        assert!(r.norm2() < 1e-3);
    }

    #[test]
    fn ridge_not_applied_when_unneeded() {
        let a = Matrix::identity(2);
        let b = Vector::from_slice(&[1.0, 2.0]);
        let (x, ridge) = solve_spd_with_ridge(&a, &b, 1.0).unwrap();
        assert_eq!(ridge, 0.0);
        assert_eq!(x.as_slice(), &[1.0, 2.0]);
    }
}
