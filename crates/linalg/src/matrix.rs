//! Dense row-major `f64` matrices.

use crate::error::LinalgError;
use crate::vector::Vector;
use crate::Result;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// Indexing is `m[(row, col)]`. Like [`Vector`], operator impls panic on
/// dimension mismatch while `checked_*` methods return errors.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices; errors if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::InvalidShape {
                    reason: format!("row {i} has length {}, expected {cols}", r.len()),
                });
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer; errors if the length
    /// does not equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidShape {
                reason: format!("buffer length {} does not match {rows}x{cols}", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a diagonal matrix from a vector.
    pub fn diag(d: &Vector) -> Self {
        let n = d.len();
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = d[i];
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// A copy of row `i` as a [`Vector`].
    pub fn row(&self, i: usize) -> Vector {
        Vector::from_slice(&self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// A copy of column `j` as a [`Vector`].
    pub fn col(&self, j: usize) -> Vector {
        Vector::from_fn(self.rows, |i| self.data[i * self.cols + j])
    }

    /// Slice view of row `i`.
    pub fn row_slice(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.data[j * self.cols + i])
    }

    /// Matrix-vector product; errors on dimension mismatch.
    pub fn mat_vec(&self, v: &Vector) -> Vector {
        assert_eq!(
            self.cols,
            v.len(),
            "mat_vec: matrix is {}x{}, vector has length {}",
            self.rows,
            self.cols,
            v.len()
        );
        let mut out = Vector::zeros(self.rows);
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v.as_slice()) {
                acc += a * b;
            }
            out[i] = acc;
        }
        out
    }

    /// Checked matrix-matrix product.
    pub fn checked_mul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "mat_mul",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order for cache-friendly access of the row-major layout.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Checked matrix addition.
    pub fn checked_add(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "mat_add",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Checked matrix subtraction.
    pub fn checked_sub(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "mat_sub",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Entry-wise scaled copy.
    pub fn scaled(&self, factor: f64) -> Matrix {
        let mut out = self.clone();
        for x in &mut out.data {
            *x *= factor;
        }
        out
    }

    /// Non-negative integer matrix power; errors for non-square matrices.
    ///
    /// Uses binary exponentiation, so `O(log k)` multiplications.
    pub fn pow(&self, mut k: u32) -> Result<Matrix> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let mut result = Matrix::identity(self.rows);
        let mut base = self.clone();
        while k > 0 {
            if k & 1 == 1 {
                result = result.checked_mul(&base)?;
            }
            k >>= 1;
            if k > 0 {
                base = base.checked_mul(&base)?;
            }
        }
        Ok(result)
    }

    /// Solves `A x = b` via LU decomposition with partial pivoting.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        crate::lu::Lu::decompose(self)?.solve(b)
    }

    /// Matrix inverse via LU decomposition; errors if singular.
    pub fn inverse(&self) -> Result<Matrix> {
        crate::lu::Lu::decompose(self)?.inverse()
    }

    /// Determinant via LU decomposition (0 for singular matrices).
    pub fn determinant(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        match crate::lu::Lu::decompose(self) {
            Ok(lu) => Ok(lu.determinant()),
            Err(LinalgError::Singular { .. }) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// Trace (sum of diagonal entries); errors for non-square matrices.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((0..self.rows).map(|i| self.data[i * self.cols + i]).sum())
    }

    /// `Aᵀ A` as used in normal equations.
    pub fn gram(&self) -> Matrix {
        let t = self.transpose();
        t.checked_mul(self).expect("gram: internal shape invariant")
    }

    /// `Aᵀ v`; panics on dimension mismatch.
    pub fn transpose_mat_vec(&self, v: &Vector) -> Vector {
        assert_eq!(
            self.rows,
            v.len(),
            "transpose_mat_vec: matrix is {}x{}, vector has length {}",
            self.rows,
            self.cols,
            v.len()
        );
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let vi = v[i];
            if vi == 0.0 {
                continue;
            }
            for (o, a) in out.as_mut_slice().iter_mut().zip(row) {
                *o += vi * a;
            }
        }
        out
    }

    /// Returns `true` if any entry is `NaN` or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Maximum absolute entry (entry-wise ∞-norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        self.checked_add(rhs).expect("matrix add: shape mismatch")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.checked_sub(rhs).expect("matrix sub: shape mismatch")
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.checked_mul(rhs).expect("matrix mul: shape mismatch")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.scaled(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn construction() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        let id = Matrix::identity(3);
        assert_eq!(id.trace().unwrap(), 3.0);
        let d = Matrix::diag(&Vector::from_slice(&[2.0, 5.0]));
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(1, 1)], 5.0);
        assert_eq!(d[(0, 1)], 0.0);
        let empty = Matrix::from_rows(&[]).unwrap();
        assert_eq!(empty.shape(), (0, 0));
    }

    #[test]
    fn row_col_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.row(1).as_slice(), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2).as_slice(), &[3.0, 6.0]);
        assert_eq!(m.row_slice(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn mat_vec_product() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let v = Vector::from_slice(&[1.0, 1.0]);
        assert_eq!(m.mat_vec(&v).as_slice(), &[3.0, 7.0]);
        let tv = m.transpose_mat_vec(&v);
        assert_eq!(tv.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn mat_mul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let c = &a * &b;
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(c[(0, 1)], 1.0);
        assert_eq!(c[(1, 0)], 4.0);
        assert_eq!(c[(1, 1)], 3.0);
        assert!(a.checked_mul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let s = &a + &b;
        assert_eq!(s[(0, 0)], 2.0);
        let d = &b - &a;
        assert_eq!(d[(1, 1)], 3.0);
        let sc = &b * 2.0;
        assert_eq!(sc[(1, 0)], 6.0);
        assert!(a.checked_add(&Matrix::zeros(3, 3)).is_err());
        assert!(a.checked_sub(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn pow_binary_exponentiation() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0]]).unwrap();
        // Fibonacci matrix: A^10 has F(11)=89 in the corner.
        let p = a.pow(10).unwrap();
        assert!(approx(p[(0, 0)], 89.0));
        assert_eq!(a.pow(0).unwrap(), Matrix::identity(2));
        assert!(Matrix::zeros(2, 3).pow(2).is_err());
    }

    #[test]
    fn solve_and_inverse() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = Vector::from_slice(&[3.0, 5.0]);
        let x = a.solve(&b).unwrap();
        let r = &a.mat_vec(&x) - &b;
        assert!(r.norm2() < 1e-12);
        let inv = a.inverse().unwrap();
        let prod = &a * &inv;
        assert!((&prod - &Matrix::identity(2)).max_abs() < 1e-12);
    }

    #[test]
    fn determinant_values() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        assert!(approx(a.determinant().unwrap(), 6.0));
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(approx(s.determinant().unwrap(), 0.0));
        assert!(Matrix::zeros(2, 3).determinant().is_err());
    }

    #[test]
    fn gram_is_symmetric() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let g = a.gram();
        assert_eq!(g.shape(), (2, 2));
        assert!(approx(g[(0, 1)], g[(1, 0)]));
        assert!(approx(g[(0, 0)], 35.0));
    }

    #[test]
    fn non_finite_and_max_abs() {
        let mut m = Matrix::zeros(2, 2);
        assert!(!m.has_non_finite());
        m[(0, 1)] = -7.0;
        assert_eq!(m.max_abs(), 7.0);
        m[(1, 1)] = f64::NAN;
        assert!(m.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }
}
