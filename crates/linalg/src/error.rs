//! Error type for linear-algebra operations.

use std::fmt;

/// Errors produced by the `eqimpact-linalg` crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Dimensions of the left operand (rows, cols).
        left: (usize, usize),
        /// Dimensions of the right operand (rows, cols).
        right: (usize, usize),
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// The matrix is singular (or numerically singular) to working precision.
    Singular {
        /// Pivot index at which singularity was detected.
        pivot: usize,
    },
    /// The matrix is not positive definite (Cholesky failure).
    NotPositiveDefinite {
        /// Leading-minor index at which the failure was detected.
        minor: usize,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Description of the iterative method.
        method: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// Construction from raw parts received inconsistent data.
    InvalidShape {
        /// Explanation of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "operation requires a square matrix, got {rows}x{cols}")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotPositiveDefinite { minor } => {
                write!(
                    f,
                    "matrix is not positive definite at leading minor {minor}"
                )
            }
            LinalgError::NoConvergence { method, iterations } => {
                write!(f, "{method} did not converge after {iterations} iterations")
            }
            LinalgError::InvalidShape { reason } => write!(f, "invalid shape: {reason}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            op: "mat_mul",
            left: (2, 3),
            right: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("mat_mul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn display_not_square() {
        let e = LinalgError::NotSquare { rows: 3, cols: 4 };
        assert!(e.to_string().contains("3x4"));
    }

    #[test]
    fn display_singular() {
        let e = LinalgError::Singular { pivot: 2 };
        assert!(e.to_string().contains("pivot 2"));
    }

    #[test]
    fn display_not_positive_definite() {
        let e = LinalgError::NotPositiveDefinite { minor: 1 };
        assert!(e.to_string().contains("minor 1"));
    }

    #[test]
    fn display_no_convergence() {
        let e = LinalgError::NoConvergence {
            method: "power iteration",
            iterations: 100,
        };
        assert!(e.to_string().contains("power iteration"));
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&LinalgError::Singular { pivot: 0 });
    }
}
