//! LU decomposition with partial pivoting.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::Result;

/// Relative pivot threshold below which a matrix is declared singular.
const SINGULARITY_EPS: f64 = 1e-13;

/// An LU decomposition `P A = L U` with partial (row) pivoting.
///
/// `L` is unit lower triangular and `U` upper triangular, stored packed in a
/// single matrix; `P` is stored as a permutation vector.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed LU factors (L below diagonal without the unit diagonal, U on
    /// and above the diagonal).
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix is row `perm[i]` of
    /// the original.
    perm: Vec<usize>,
    /// Sign of the permutation (`+1` or `-1`), used for the determinant.
    perm_sign: f64,
}

impl Lu {
    /// Computes the decomposition; errors for non-square or singular input.
    pub fn decompose(a: &Matrix) -> Result<Lu> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        // Scale reference for relative singularity detection.
        let scale = lu.max_abs().max(1.0);

        for k in 0..n {
            // Find pivot row.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= SINGULARITY_EPS * scale {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` using the precomputed factors.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply permutation, then forward substitution (L y = P b).
        let mut y = Vector::from_fn(n, |i| b[self.perm[i]]);
        for i in 0..n {
            let mut acc = y[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution (U x = y).
        let mut x = y;
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.dim();
        let mut det = self.perm_sign;
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Inverse of the original matrix, one solve per unit vector.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut out = Matrix::zeros(n, n);
        let mut e = Vector::zeros(n);
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_well_conditioned_system() {
        let a =
            Matrix::from_rows(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]).unwrap();
        let b = Vector::from_slice(&[1.0, -2.0, 0.0]);
        let lu = Lu::decompose(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        // Known solution x = (1, -2, -2).
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] + 2.0).abs() < 1e-10);
        assert!((x[2] + 2.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            Lu::decompose(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::decompose(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_rhs_length_mismatch() {
        let a = Matrix::identity(2);
        let lu = Lu::decompose(&a).unwrap();
        assert!(lu.solve(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn determinant_with_pivoting() {
        // Requires a row swap: leading zero pivot.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::decompose(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = Lu::decompose(&a).unwrap().inverse().unwrap();
        let id = &a * &inv;
        assert!((&id - &Matrix::identity(2)).max_abs() < 1e-12);
    }

    #[test]
    fn permutation_sign_tracked() {
        let a = Matrix::from_rows(&[&[0.0, 0.0, 1.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]).unwrap();
        // Cyclic permutation matrix has determinant +1.
        let lu = Lu::decompose(&a).unwrap();
        assert!((lu.determinant() - 1.0).abs() < 1e-12);
    }
}
