//! Power iteration and spectral utilities.
//!
//! The primitivity and contractivity analysis of Markov systems needs the
//! spectral radius of non-negative matrices (Perron-Frobenius eigenvalue)
//! and the associated eigenvector; power iteration is exact enough and
//! dependency-free.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::Result;

/// Outcome of a successful power iteration.
#[derive(Debug, Clone)]
pub struct PowerIterationResult {
    /// Dominant eigenvalue estimate (Rayleigh quotient at the final step).
    pub eigenvalue: f64,
    /// Corresponding unit (ℓ²) eigenvector estimate.
    pub eigenvector: Vector,
    /// Iterations performed.
    pub iterations: usize,
}

/// Runs power iteration on a square matrix from a deterministic start.
///
/// Converges for matrices with a unique dominant eigenvalue; for
/// non-negative primitive matrices (our use case) Perron-Frobenius
/// guarantees that. Errors if the matrix is not square, iteration exceeds
/// `max_iter` without the eigenvector stabilizing to `tol`, or the iterate
/// collapses to (numerically) zero.
pub fn power_iteration(a: &Matrix, max_iter: usize, tol: f64) -> Result<PowerIterationResult> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::InvalidShape {
            reason: "power iteration on empty matrix".to_string(),
        });
    }
    // Deterministic, non-degenerate start: slightly tilted uniform vector so
    // we do not start orthogonal to the dominant eigenvector of symmetric
    // sign-structured matrices.
    let mut v = Vector::from_fn(n, |i| 1.0 + (i as f64 + 1.0) * 1e-3);
    let norm = v.norm2();
    v.scale_mut(1.0 / norm);

    for it in 1..=max_iter {
        let w = a.mat_vec(&v);
        let w_norm = w.norm2();
        if w_norm < 1e-300 {
            // The matrix annihilates the iterate: dominant eigenvalue is 0.
            return Ok(PowerIterationResult {
                eigenvalue: 0.0,
                eigenvector: v,
                iterations: it,
            });
        }
        let next = w.scaled(1.0 / w_norm);
        // Rayleigh quotient with the normalized iterate.
        let eigenvalue = next.dot(&a.mat_vec(&next)).expect("same length");
        // Eigenvector convergence, up to sign.
        let diff_plus = (&next - &v).norm2();
        let diff_minus = (&next + &v).norm2();
        let diff = diff_plus.min(diff_minus);
        v = next;
        if diff < tol {
            return Ok(PowerIterationResult {
                eigenvalue,
                eigenvector: v,
                iterations: it,
            });
        }
    }
    Err(LinalgError::NoConvergence {
        method: "power iteration",
        iterations: max_iter,
    })
}

/// Estimates the spectral radius |λ_max| of a square matrix.
///
/// For matrices whose dominant eigenvalue is complex the power iteration on
/// the matrix itself may cycle; we therefore fall back to the Gelfand
/// formula `ρ(A) = lim ‖A^k‖^{1/k}` with the ∞-norm when direct iteration
/// fails.
pub fn spectral_radius(a: &Matrix) -> Result<f64> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if a.rows() == 0 {
        return Ok(0.0);
    }
    match power_iteration(a, 10_000, 1e-12) {
        Ok(r) => Ok(r.eigenvalue.abs()),
        Err(LinalgError::NoConvergence { .. }) => {
            // Gelfand fallback: ‖A^k‖_∞^{1/k} for a few doubling powers.
            let mut p = a.clone();
            let mut k: u32 = 1;
            let mut estimate = row_sum_norm(&p);
            for _ in 0..10 {
                p = p.checked_mul(&p)?;
                k *= 2;
                let norm = row_sum_norm(&p);
                if norm == 0.0 {
                    return Ok(0.0);
                }
                estimate = norm.powf(1.0 / k as f64);
                if !estimate.is_finite() {
                    break;
                }
            }
            Ok(estimate)
        }
        Err(e) => Err(e),
    }
}

/// Induced ∞-norm (maximum absolute row sum).
pub fn row_sum_norm(a: &Matrix) -> f64 {
    let mut best = 0.0f64;
    for i in 0..a.rows() {
        let s: f64 = a.row_slice(i).iter().map(|x| x.abs()).sum();
        best = best.max(s);
    }
    best
}

/// Induced 1-norm (maximum absolute column sum).
pub fn col_sum_norm(a: &Matrix) -> f64 {
    let mut best = 0.0f64;
    for j in 0..a.cols() {
        let mut s = 0.0;
        for i in 0..a.rows() {
            s += a[(i, j)].abs();
        }
        best = best.max(s);
    }
    best
}

/// Frobenius norm.
pub fn frobenius_norm(a: &Matrix) -> f64 {
    a.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_eigenvalue_of_diagonal() {
        let a = Matrix::diag(&Vector::from_slice(&[1.0, 3.0, 2.0]));
        let r = power_iteration(&a, 1000, 1e-12).unwrap();
        assert!((r.eigenvalue - 3.0).abs() < 1e-9);
        // Eigenvector concentrates on index 1.
        assert!(r.eigenvector[1].abs() > 0.999);
    }

    #[test]
    fn stochastic_matrix_has_radius_one() {
        let a = Matrix::from_rows(&[&[0.9, 0.1], &[0.4, 0.6]]).unwrap();
        let rho = spectral_radius(&a).unwrap();
        assert!((rho - 1.0).abs() < 1e-8);
    }

    #[test]
    fn substochastic_matrix_has_radius_below_one() {
        let a = Matrix::from_rows(&[&[0.5, 0.2], &[0.1, 0.4]]).unwrap();
        let rho = spectral_radius(&a).unwrap();
        assert!(rho < 1.0);
        assert!(rho > 0.0);
    }

    #[test]
    fn rotation_matrix_radius_via_gelfand() {
        // 90-degree rotation: eigenvalues ±i, power iteration cycles, the
        // Gelfand fallback must return 1.
        let a = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]).unwrap();
        let rho = spectral_radius(&a).unwrap();
        assert!((rho - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nilpotent_matrix_radius_zero() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let rho = spectral_radius(&a).unwrap();
        assert!(rho < 1e-6);
    }

    #[test]
    fn zero_matrix_short_circuits() {
        let a = Matrix::zeros(3, 3);
        let r = power_iteration(&a, 10, 1e-12).unwrap();
        assert_eq!(r.eigenvalue, 0.0);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(row_sum_norm(&a), 7.0);
        assert_eq!(col_sum_norm(&a), 6.0);
        assert!((frobenius_norm(&a) - 30f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_square() {
        assert!(power_iteration(&Matrix::zeros(2, 3), 10, 1e-6).is_err());
        assert!(spectral_radius(&Matrix::zeros(2, 3)).is_err());
    }
}
