//! Metric and norm helpers shared across the workspace.
//!
//! The ergodicity theory in the paper is phrased on a metric space `(X, d)`;
//! these helpers provide the concrete metrics used by the Markov-system
//! contractivity estimators.

use crate::vector::Vector;

/// Euclidean distance between two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Manhattan (ℓ¹) distance between two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "manhattan: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Chebyshev (ℓ∞) distance between two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn chebyshev(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "chebyshev: length mismatch");
    a.iter().zip(b).fold(0.0, |m, (x, y)| m.max((x - y).abs()))
}

/// The discrete metric: 0 if equal, 1 otherwise (bitwise comparison).
///
/// Used for finite action sets like `{credit denied, credit approved}`,
/// where the classification problem of Sec. VI lives.
pub fn discrete(a: &[f64], b: &[f64]) -> f64 {
    if a == b {
        0.0
    } else {
        1.0
    }
}

/// A metric on `R^n` represented as a function object.
///
/// Cloneable and object-safe so Markov systems can carry their metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Euclidean (ℓ²) metric.
    Euclidean,
    /// Manhattan (ℓ¹) metric.
    Manhattan,
    /// Chebyshev (ℓ∞) metric.
    Chebyshev,
    /// Discrete metric (0/1).
    Discrete,
}

impl MetricKind {
    /// Evaluates the metric on two points.
    pub fn distance(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            MetricKind::Euclidean => euclidean(a, b),
            MetricKind::Manhattan => manhattan(a, b),
            MetricKind::Chebyshev => chebyshev(a, b),
            MetricKind::Discrete => discrete(a, b),
        }
    }

    /// Evaluates the metric on two vectors.
    pub fn distance_vec(self, a: &Vector, b: &Vector) -> f64 {
        self.distance(a.as_slice(), b.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_distance() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(manhattan(&[0.0, 0.0], &[3.0, -4.0]), 7.0);
    }

    #[test]
    fn chebyshev_distance() {
        assert_eq!(chebyshev(&[0.0, 0.0], &[3.0, -4.0]), 4.0);
    }

    #[test]
    fn discrete_distance() {
        assert_eq!(discrete(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(discrete(&[1.0, 2.0], &[1.0, 2.5]), 1.0);
    }

    #[test]
    fn metric_kind_dispatch() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(MetricKind::Euclidean.distance(&a, &b), 5.0);
        assert_eq!(MetricKind::Manhattan.distance(&a, &b), 7.0);
        assert_eq!(MetricKind::Chebyshev.distance(&a, &b), 4.0);
        assert_eq!(MetricKind::Discrete.distance(&a, &b), 1.0);
        let va = Vector::from_slice(&a);
        let vb = Vector::from_slice(&b);
        assert_eq!(MetricKind::Euclidean.distance_vec(&va, &vb), 5.0);
    }

    #[test]
    fn metric_axioms_spot_check() {
        // Symmetry and identity for all kinds on a few points.
        let pts: [&[f64]; 3] = [&[0.0, 1.0], &[2.0, -1.0], &[0.5, 0.5]];
        for kind in [
            MetricKind::Euclidean,
            MetricKind::Manhattan,
            MetricKind::Chebyshev,
            MetricKind::Discrete,
        ] {
            for p in pts {
                assert_eq!(kind.distance(p, p), 0.0);
                for q in pts {
                    assert_eq!(kind.distance(p, q), kind.distance(q, p));
                    // Triangle inequality through the third point.
                    for r in pts {
                        assert!(
                            kind.distance(p, q)
                                <= kind.distance(p, r) + kind.distance(r, q) + 1e-12
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        euclidean(&[1.0], &[1.0, 2.0]);
    }
}
