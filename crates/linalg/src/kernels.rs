//! Chunked batch kernels for column-major (struct-of-arrays) hot paths.
//!
//! These are the primitive loops the workspace's columnar feature plane is
//! built on: a score vector is produced by `fill` + one `axpy` per feature
//! column + `offset` for the intercept, instead of a per-row dot product
//! over a gathered row slice.
//!
//! # Bit-identity contract
//!
//! Every kernel performs the *same per-element fold* as the row-major code
//! it replaces, in the same order:
//!
//! * `axpy` adds `a * x[i]` onto `out[i]` — one product, one addition per
//!   element, no fused multiply-add, no reassociation. Applying `axpy`
//!   once per column (in column order) after `fill(out, 0.0)` therefore
//!   reproduces the row-major left fold
//!   `((0.0 + a₀x₀) + a₁x₁) + …` bitwise.
//! * `offset` adds `c` onto every element — bitwise the `intercept + Σ`
//!   shape of a scalar linear predictor (IEEE addition is commutative at
//!   the bit level).
//! * `dot_seq` / `sum_seq` use a single sequential accumulator (no lane
//!   splitting), so they match the scalar `iter().zip().map().sum()` and
//!   `iter().sum()` folds bitwise.
//!
//! The element-wise kernels process `LANES` elements per iteration purely
//! to expose independent operations to the optimizer; because each element
//! only ever touches its own accumulator slot, the lane width cannot
//! change results.

/// Elements processed per unrolled iteration in the element-wise kernels.
pub const LANES: usize = 8;

/// Sets every element of `out` to `v`.
pub fn fill(out: &mut [f64], v: f64) {
    for o in out.iter_mut() {
        *o = v;
    }
}

/// `out[i] += c` for every element.
///
/// Matches the scalar `intercept + acc` shape bit-for-bit — IEEE-754
/// addition is commutative at the bit level (sign, rounding and zero
/// handling included), so finishing a batched linear predictor with
/// `offset` equals the per-row formula exactly.
pub fn offset(out: &mut [f64], c: f64) {
    let mut chunks = out.chunks_exact_mut(LANES);
    for o in &mut chunks {
        for v in o.iter_mut() {
            *v += c;
        }
    }
    for o in chunks.into_remainder() {
        *o += c;
    }
}

/// `out[i] += a * x[i]` for every element (BLAS `axpy` over slices).
///
/// # Panics
///
/// Panics if `out` and `x` differ in length.
pub fn axpy(out: &mut [f64], a: f64, x: &[f64]) {
    assert_eq!(out.len(), x.len(), "axpy: length mismatch");
    let mut out_chunks = out.chunks_exact_mut(LANES);
    let mut x_chunks = x.chunks_exact(LANES);
    for (o, xs) in (&mut out_chunks).zip(&mut x_chunks) {
        for l in 0..LANES {
            o[l] += a * xs[l];
        }
    }
    for (o, &v) in out_chunks
        .into_remainder()
        .iter_mut()
        .zip(x_chunks.remainder())
    {
        *o += a * v;
    }
}

/// Strictly sequential dot product: `Σᵢ a[i] * b[i]` with a single
/// accumulator, matching the scalar `zip().map().sum()` fold bitwise.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_seq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot_seq: length mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Strictly sequential sum with a single accumulator, matching the scalar
/// `iter().sum()` fold bitwise.
pub fn sum_seq(a: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &v in a {
        acc += v;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_matches_scalar_fold_bitwise() {
        // 19 elements: two full lanes plus a remainder of 3.
        let x: Vec<f64> = (0..19).map(|i| (i as f64).sin() * 3.0).collect();
        let y: Vec<f64> = (0..19).map(|i| (i as f64).cos() * 0.7).collect();
        let a = 1.375e-3;
        let mut out = y.clone();
        axpy(&mut out, a, &x);
        for i in 0..19 {
            assert_eq!(out[i].to_bits(), (y[i] + a * x[i]).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "axpy: length mismatch")]
    fn axpy_checks_lengths() {
        axpy(&mut [0.0; 3], 1.0, &[1.0; 4]);
    }

    #[test]
    fn fill_and_offset() {
        let mut out = vec![f64::NAN; 11];
        fill(&mut out, 2.0);
        assert!(out.iter().all(|&v| v == 2.0));
        offset(&mut out, -0.5);
        assert!(out.iter().all(|&v| v == 1.5));
    }

    #[test]
    fn offset_matches_scalar_order() {
        let vals: Vec<f64> = (0..10).map(|i| 0.1 * i as f64).collect();
        let mut out = vals.clone();
        let c = 0.3;
        offset(&mut out, c);
        for i in 0..10 {
            assert_eq!(out[i].to_bits(), (c + vals[i]).to_bits());
        }
    }

    #[test]
    fn column_axpy_sweep_matches_row_dot_bitwise() {
        // The contract the columnar feature plane relies on: fill + axpy
        // per column + offset reproduces the per-row
        // `intercept + zip().map().sum()` fold exactly.
        let rows = 37;
        let cols: Vec<Vec<f64>> = (0..3)
            .map(|j| {
                (0..rows)
                    .map(|i| ((i * 7 + j * 13) as f64).sin() * 2.0)
                    .collect()
            })
            .collect();
        let coef = [0.25, -1.5, 3.0e-2];
        let intercept = -0.125;
        let mut out = vec![f64::NAN; rows];
        fill(&mut out, 0.0);
        for (b, col) in coef.iter().zip(&cols) {
            axpy(&mut out, *b, col);
        }
        offset(&mut out, intercept);
        for i in 0..rows {
            let row: Vec<f64> = cols.iter().map(|c| c[i]).collect();
            let scalar = intercept + coef.iter().zip(&row).map(|(b, v)| b * v).sum::<f64>();
            assert_eq!(out[i].to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn dot_and_sum_are_sequential() {
        let a: Vec<f64> = (0..13).map(|i| 1.0 / (i + 1) as f64).collect();
        let b: Vec<f64> = (0..13).map(|i| (i as f64) * 0.3).collect();
        let scalar: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(dot_seq(&a, &b).to_bits(), scalar.to_bits());
        let s: f64 = a.iter().sum();
        assert_eq!(sum_seq(&a).to_bits(), s.to_bits());
    }
}
