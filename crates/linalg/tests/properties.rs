//! Property-based tests for the linear-algebra substrate.

use eqimpact_linalg::{power, Matrix, Vector};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len..=len)
}

fn well_conditioned_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    // Diagonally dominant matrices are guaranteed invertible.
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data).unwrap();
        for i in 0..n {
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    })
}

proptest! {
    #[test]
    fn dot_is_commutative(a in small_vec(5), b in small_vec(5)) {
        let va = Vector::from_slice(&a);
        let vb = Vector::from_slice(&b);
        let ab = va.dot(&vb).unwrap();
        let ba = vb.dot(&va).unwrap();
        prop_assert!((ab - ba).abs() <= 1e-9 * (1.0 + ab.abs()));
    }

    #[test]
    fn triangle_inequality_l2(a in small_vec(4), b in small_vec(4)) {
        let va = Vector::from_slice(&a);
        let vb = Vector::from_slice(&b);
        let sum = &va + &vb;
        prop_assert!(sum.norm2() <= va.norm2() + vb.norm2() + 1e-9);
    }

    #[test]
    fn norm_ordering(a in small_vec(6)) {
        // ‖x‖_∞ ≤ ‖x‖_2 ≤ ‖x‖_1 for any vector.
        let v = Vector::from_slice(&a);
        prop_assert!(v.norm_inf() <= v.norm2() + 1e-9);
        prop_assert!(v.norm2() <= v.norm1() + 1e-9);
    }

    #[test]
    fn solve_then_multiply_roundtrip(m in well_conditioned_matrix(4), b in small_vec(4)) {
        let rhs = Vector::from_slice(&b);
        let x = m.solve(&rhs).unwrap();
        let r = &m.mat_vec(&x) - &rhs;
        prop_assert!(r.norm2() < 1e-6 * (1.0 + rhs.norm2()));
    }

    #[test]
    fn inverse_roundtrip(m in well_conditioned_matrix(3)) {
        let inv = m.inverse().unwrap();
        let prod = &m * &inv;
        prop_assert!((&prod - &Matrix::identity(3)).max_abs() < 1e-8);
    }

    #[test]
    fn transpose_involution(data in prop::collection::vec(-10.0f64..10.0, 12)) {
        let m = Matrix::from_vec(3, 4, data).unwrap();
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associative(
        a in well_conditioned_matrix(3),
        b in well_conditioned_matrix(3),
        c in well_conditioned_matrix(3),
    ) {
        let left = &(&a * &b) * &c;
        let right = &a * &(&b * &c);
        prop_assert!((&left - &right).max_abs() < 1e-6 * left.max_abs().max(1.0));
    }

    #[test]
    fn determinant_multiplicative(
        a in well_conditioned_matrix(3),
        b in well_conditioned_matrix(3),
    ) {
        let da = a.determinant().unwrap();
        let db = b.determinant().unwrap();
        let dab = (&a * &b).determinant().unwrap();
        prop_assert!((dab - da * db).abs() < 1e-6 * dab.abs().max(1.0));
    }

    #[test]
    fn spectral_radius_bounded_by_inf_norm(m in well_conditioned_matrix(4)) {
        let rho = power::spectral_radius(&m).unwrap();
        prop_assert!(rho <= power::row_sum_norm(&m) + 1e-6);
    }

    #[test]
    fn matrix_power_matches_repeated_multiplication(m in well_conditioned_matrix(2)) {
        // Normalize so powers stay finite.
        let norm = power::row_sum_norm(&m).max(1.0);
        let s = m.scaled(1.0 / norm);
        let p3 = s.pow(3).unwrap();
        let manual = &(&s * &s) * &s;
        prop_assert!((&p3 - &manual).max_abs() < 1e-9);
    }
}
