//! Property-based tests for Markov systems and finite chains.

use eqimpact_linalg::Matrix;
use eqimpact_markov::ifs::{affine1d, Ifs};
use eqimpact_markov::operator::{markov_operator_apply, ParticleMeasure};
use eqimpact_markov::FiniteChain;
use eqimpact_stats::SimRng;
use proptest::prelude::*;

/// Strategy: a random row-stochastic matrix with strictly positive entries
/// (hence primitive).
fn positive_stochastic(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(0.05f64..1.0, n * n).prop_map(move |raw| {
        let mut m = Matrix::from_vec(n, n, raw).unwrap();
        for i in 0..n {
            let s: f64 = m.row_slice(i).iter().sum();
            for j in 0..n {
                m[(i, j)] /= s;
            }
        }
        m
    })
}

/// Strategy: an IFS of 2-4 affine contractions on R with constant
/// probabilities.
fn contractive_ifs() -> impl Strategy<Value = Ifs> {
    prop::collection::vec((-0.9f64..0.9, -1.0f64..1.0, 0.1f64..1.0), 2..5).prop_map(|maps| {
        let total: f64 = maps.iter().map(|m| m.2).sum();
        let mut b = Ifs::builder(1);
        for (a, c, w) in maps {
            b = b.map_const(affine1d(a, c), w / total);
        }
        b.build().unwrap()
    })
}

proptest! {
    #[test]
    fn stationary_distribution_is_fixed_point(p in positive_stochastic(4)) {
        let chain = FiniteChain::new(p).unwrap();
        prop_assert!(chain.is_primitive());
        let pi = chain.stationary_distribution().unwrap();
        // π is a probability vector.
        prop_assert!((pi.sum() - 1.0).abs() < 1e-9);
        prop_assert!(pi.iter().all(|&x| x >= -1e-12));
        // πᵀ P = πᵀ.
        let evolved = chain.evolve(&pi);
        prop_assert!((&evolved - &pi).norm_inf() < 1e-9);
    }

    #[test]
    fn evolution_preserves_probability_mass(p in positive_stochastic(3)) {
        let chain = FiniteChain::new(p).unwrap();
        let nu = eqimpact_linalg::Vector::from_slice(&[0.2, 0.5, 0.3]);
        let out = chain.evolve_n(&nu, 7);
        prop_assert!((out.sum() - 1.0).abs() < 1e-9);
        prop_assert!(out.iter().all(|&x| x >= -1e-12));
    }

    #[test]
    fn tv_decay_monotone_for_positive_chains(p in positive_stochastic(3)) {
        let chain = FiniteChain::new(p).unwrap();
        let nu = eqimpact_linalg::Vector::from_slice(&[1.0, 0.0, 0.0]);
        let decay = chain.tv_decay(&nu, 25).unwrap();
        for w in decay.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9);
        }
        prop_assert!(decay[25] < decay[0] + 1e-12);
    }

    #[test]
    fn ifs_probabilities_normalized(ifs in contractive_ifs(), x in -5.0f64..5.0) {
        let probs = ifs.probabilities_at(&[x]).unwrap();
        let total: f64 = probs.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn operator_duality_holds(ifs in contractive_ifs(), pts in prop::collection::vec(-2.0f64..2.0, 1..6)) {
        let ms = ifs.as_markov_system();
        let points: Vec<Vec<f64>> = pts.iter().map(|&x| vec![x]).collect();
        let nu = ParticleMeasure::uniform(&points);
        let f = |x: &[f64]| x[0] * x[0] + 1.0;
        let lhs = nu.integrate(|x| markov_operator_apply(ms, f, x));
        let rhs = nu.push_forward_split(ms).integrate(f);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    fn push_forward_preserves_mass(ifs in contractive_ifs(), x0 in -2.0f64..2.0) {
        let ms = ifs.as_markov_system();
        let nu = ParticleMeasure::dirac(&[x0]);
        let next = nu.push_forward_split(ms);
        let total: f64 = next.weights().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn synchronous_coupling_contracts_affine_ifs(
        ifs in contractive_ifs(),
        x0 in -1.0f64..1.0,
        y0 in -1.0f64..1.0,
        seed in 0u64..1000,
    ) {
        // For IFS of |slope| <= 0.9 affine maps with state-independent
        // probabilities, synchronous coupling contracts by at least 0.9
        // per step.
        let ms = ifs.as_markov_system();
        let mut rng = SimRng::new(seed);
        let trace = eqimpact_markov::coupling::synchronous_coupling(
            ms, &[x0], &[y0], 50,
            eqimpact_linalg::norm::MetricKind::Euclidean,
            1e-9, &mut rng,
        );
        let d0 = (x0 - y0).abs();
        let bound = d0 * 0.9f64.powi(50) + 1e-9;
        prop_assert!(trace.final_distance() <= bound,
            "final {} > bound {}", trace.final_distance(), bound);
    }

    #[test]
    fn trajectory_length_contract(ifs in contractive_ifs(), steps in 0usize..50, seed in 0u64..100) {
        let mut rng = SimRng::new(seed);
        let traj = ifs.trajectory(&[0.0], steps, &mut rng);
        prop_assert_eq!(traj.len(), steps + 1);
    }

    #[test]
    fn resample_is_unbiased_in_expectation(seed in 0u64..200) {
        // Mean of the resampled cloud should stay near the original mean.
        let pts: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64 / 255.0]).collect();
        let nu = ParticleMeasure::uniform(&pts);
        let mut rng = SimRng::new(seed);
        let r = nu.resample(64, &mut rng);
        prop_assert_eq!(r.len(), 64);
        prop_assert!((r.mean_coord(0) - 0.5).abs() < 0.2);
    }
}
