//! Unique-ergodicity analysis: the paper's Sec. VI verdict.
//!
//! The theorem chain implemented here (Werner 2004 via the paper):
//!
//! 1. graph strongly connected (irreducible) ⇒ an invariant measure exists;
//! 2. adjacency matrix additionally primitive (aperiodic) **and** the
//!    system average-contractive ⇒ the invariant measure is attractive and
//!    the system uniquely ergodic;
//! 3. unique ergodicity ⇒ Cesàro averages of observables converge to the
//!    same limit from every initial condition — exactly the paper's **equal
//!    impact** (Def. 3).
//!
//! [`analyze`] produces the structural verdict; [`elton_average`] and
//! [`empirical_equal_impact`] provide the empirical counterparts.

use crate::contractivity::{estimate_contraction_factor, ContractivityReport};
use crate::system::MarkovSystem;
use eqimpact_linalg::norm::MetricKind;
use eqimpact_stats::timeseries::cesaro_trajectory;
use eqimpact_stats::SimRng;

/// Structural verdict on ergodicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErgodicityVerdict {
    /// Irreducible + aperiodic + contractive: unique attractive invariant
    /// measure; equal impact achievable.
    UniquelyErgodic,
    /// Irreducible (an invariant measure exists) but periodic or not
    /// verified contractive: convergence only in the Cesàro sense, if at
    /// all.
    InvariantMeasureExists,
    /// Not irreducible: multiple recurrent classes possible; equal impact
    /// across users is not guaranteed.
    NotIrreducible,
}

impl eqimpact_stats::ToJson for ErgodicityVerdict {
    fn to_json(&self) -> eqimpact_stats::Json {
        eqimpact_stats::Json::Str(
            match self {
                ErgodicityVerdict::UniquelyErgodic => "uniquely_ergodic",
                ErgodicityVerdict::InvariantMeasureExists => "invariant_measure_exists",
                ErgodicityVerdict::NotIrreducible => "not_irreducible",
            }
            .to_string(),
        )
    }
}

/// Full report of the structural + numerical analysis.
#[derive(Debug, Clone)]
pub struct UniqueErgodicityReport {
    /// The verdict.
    pub verdict: ErgodicityVerdict,
    /// Whether the underlying graph is strongly connected.
    pub irreducible: bool,
    /// Graph period, when defined.
    pub period: Option<u64>,
    /// Whether the adjacency matrix is primitive.
    pub primitive: bool,
    /// The contractivity sweep.
    pub contractivity: ContractivityReport,
}

impl UniqueErgodicityReport {
    /// Whether the analysis supports the equal-impact property (unique
    /// attractive invariant measure).
    pub fn supports_equal_impact(&self) -> bool {
        self.verdict == ErgodicityVerdict::UniquelyErgodic
    }
}

/// Runs the combined structural and numerical analysis of a Markov system:
/// graph irreducibility, aperiodicity/primitivity, and a sampled
/// average-contractivity sweep with `n_pairs` pairs from `sampler`.
pub fn analyze(
    ms: &MarkovSystem,
    metric: MetricKind,
    n_pairs: usize,
    rng: &mut SimRng,
    sampler: impl FnMut(&mut SimRng) -> Vec<f64>,
) -> UniqueErgodicityReport {
    let g = ms.graph();
    let irreducible = g.is_strongly_connected();
    let period = g.period();
    let primitive = g.is_primitive();
    let contractivity = estimate_contraction_factor(ms, metric, n_pairs, rng, sampler);

    let verdict = if !irreducible {
        ErgodicityVerdict::NotIrreducible
    } else if primitive && contractivity.is_contractive() {
        ErgodicityVerdict::UniquelyErgodic
    } else {
        ErgodicityVerdict::InvariantMeasureExists
    };

    UniqueErgodicityReport {
        verdict,
        irreducible,
        period,
        primitive,
        contractivity,
    }
}

/// Elton's ergodic average: the Cesàro trajectory of the observable `f`
/// along a single simulated path from `x0`.
///
/// For uniquely ergodic systems, Elton's theorem says this converges a.s.
/// to `µ(f)` regardless of `x0`.
pub fn elton_average(
    ms: &MarkovSystem,
    x0: &[f64],
    steps: usize,
    rng: &mut SimRng,
    f: impl Fn(&[f64]) -> f64,
) -> Vec<f64> {
    let obs = ms.observable_trajectory(x0, steps, rng, f);
    cesaro_trajectory(&obs)
}

/// Result of the empirical equal-impact test.
#[derive(Debug, Clone)]
pub struct EqualImpactTest {
    /// Final Cesàro average per initial condition.
    pub limits: Vec<f64>,
    /// Max pairwise spread between the limits.
    pub spread: f64,
    /// Whether the spread is below the tolerance used.
    pub passed: bool,
}

/// Empirical equal-impact check (Def. 3 of the paper): runs the ergodic
/// average from several initial conditions (with independent randomness)
/// and verifies all limits coincide within `tolerance`.
pub fn empirical_equal_impact(
    ms: &MarkovSystem,
    initials: &[Vec<f64>],
    steps: usize,
    tolerance: f64,
    rng: &mut SimRng,
    f: impl Fn(&[f64]) -> f64 + Copy,
) -> EqualImpactTest {
    let mut limits = Vec::with_capacity(initials.len());
    for (i, x0) in initials.iter().enumerate() {
        let mut stream = rng.split(i as u64);
        let avg = elton_average(ms, x0, steps, &mut stream, f);
        limits.push(*avg.last().expect("steps >= 0 gives at least one value"));
    }
    let spread = limits.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x))
        - limits.iter().fold(f64::INFINITY, |m, &x| m.min(x));
    EqualImpactTest {
        spread,
        passed: spread <= tolerance,
        limits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contractivity::box_sampler;
    use crate::ifs::{affine1d, Ifs};

    fn contractive_system() -> MarkovSystem {
        Ifs::builder(1)
            .map_const(affine1d(0.5, 0.0), 0.5)
            .map_const(affine1d(0.5, 0.5), 0.5)
            .build()
            .unwrap()
            .as_markov_system()
            .clone()
    }

    /// A two-cell deterministic flip system: irreducible but period 2.
    fn periodic_system() -> MarkovSystem {
        MarkovSystem::builder(1)
            .cell(|x| x[0] < 0.0)
            .cell(|x| x[0] >= 0.0)
            .edge(0, 1, |x| vec![-0.5 * x[0] + 0.1], |_| 1.0)
            .edge(1, 0, |x| vec![-0.5 * x[0] - 0.1], |_| 1.0)
            .build()
            .unwrap()
    }

    /// Two disconnected self-loops: not irreducible.
    fn reducible_system() -> MarkovSystem {
        MarkovSystem::builder(1)
            .cell(|x| x[0] < 0.0)
            .cell(|x| x[0] >= 0.0)
            .edge(0, 0, |x| vec![0.5 * x[0] - 0.5], |_| 1.0)
            .edge(1, 1, |x| vec![0.5 * x[0] + 0.5], |_| 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn contractive_primitive_system_is_uniquely_ergodic() {
        let ms = contractive_system();
        let mut rng = SimRng::new(1);
        let report = analyze(
            &ms,
            MetricKind::Euclidean,
            400,
            &mut rng,
            box_sampler(vec![0.0], vec![1.0]),
        );
        assert!(report.irreducible);
        assert!(report.primitive);
        assert_eq!(report.period, Some(1));
        assert!(report.contractivity.is_contractive());
        assert_eq!(report.verdict, ErgodicityVerdict::UniquelyErgodic);
        assert!(report.supports_equal_impact());
    }

    #[test]
    fn periodic_system_only_has_invariant_measure() {
        let ms = periodic_system();
        let mut rng = SimRng::new(2);
        let report = analyze(
            &ms,
            MetricKind::Euclidean,
            400,
            &mut rng,
            box_sampler(vec![-1.0], vec![1.0]),
        );
        assert!(report.irreducible);
        assert_eq!(report.period, Some(2));
        assert!(!report.primitive);
        assert_eq!(report.verdict, ErgodicityVerdict::InvariantMeasureExists);
        assert!(!report.supports_equal_impact());
    }

    #[test]
    fn single_state_chain_analyzes_without_panicking() {
        // The degenerate one-state chain (a single whole-space cell with
        // one self-loop) is what trace extraction produces when every
        // sample lands in the same bin. It must analyze cleanly: the
        // trivial graph is irreducible and aperiodic, and the verdict
        // hinges entirely on the sampled contraction factor.
        let contracting = MarkovSystem::builder(1)
            .edge(0, 0, |x| vec![0.5 * x[0]], |_| 1.0)
            .build()
            .unwrap();
        let mut rng = SimRng::new(11);
        let report = analyze(
            &contracting,
            MetricKind::Euclidean,
            200,
            &mut rng,
            box_sampler(vec![-1.0], vec![1.0]),
        );
        assert!(report.irreducible);
        assert_eq!(report.period, Some(1));
        assert!(report.primitive);
        assert_eq!(report.verdict, ErgodicityVerdict::UniquelyErgodic);

        // The identity self-loop is the fully-information-free case:
        // nothing contracts, so the verdict must stop at "invariant
        // measure exists" with a clean factor of one — no NaN, no panic.
        let frozen = MarkovSystem::builder(1)
            .edge(0, 0, |x| vec![x[0]], |_| 1.0)
            .build()
            .unwrap();
        let report = analyze(
            &frozen,
            MetricKind::Euclidean,
            200,
            &mut rng,
            box_sampler(vec![-1.0], vec![1.0]),
        );
        assert!(report.irreducible && report.primitive);
        assert!((report.contractivity.estimated_factor - 1.0).abs() < 1e-12);
        assert!(!report.contractivity.estimated_factor.is_nan());
        assert_eq!(report.verdict, ErgodicityVerdict::InvariantMeasureExists);
    }

    #[test]
    fn reducible_system_flagged() {
        let ms = reducible_system();
        let mut rng = SimRng::new(3);
        let report = analyze(
            &ms,
            MetricKind::Euclidean,
            400,
            &mut rng,
            box_sampler(vec![-1.0], vec![1.0]),
        );
        assert!(!report.irreducible);
        assert_eq!(report.verdict, ErgodicityVerdict::NotIrreducible);
    }

    #[test]
    fn elton_average_converges_to_invariant_mean() {
        let ms = contractive_system();
        let mut rng = SimRng::new(4);
        let avg = elton_average(&ms, &[0.99], 20_000, &mut rng, |x| x[0]);
        assert!((avg.last().unwrap() - 0.5).abs() < 0.01);
    }

    #[test]
    fn equal_impact_passes_for_uniquely_ergodic() {
        let ms = contractive_system();
        let mut rng = SimRng::new(5);
        let test = empirical_equal_impact(
            &ms,
            &[vec![0.0], vec![0.5], vec![1.0]],
            20_000,
            0.02,
            &mut rng,
            |x| x[0],
        );
        assert!(test.passed, "spread = {}", test.spread);
        assert_eq!(test.limits.len(), 3);
    }

    #[test]
    fn equal_impact_fails_for_reducible_system() {
        // Trajectories started in different cells converge to different
        // fixed points (-1 and +1), so the Cesàro limits differ.
        let ms = reducible_system();
        let mut rng = SimRng::new(6);
        let test =
            empirical_equal_impact(&ms, &[vec![-0.5], vec![0.5]], 2_000, 0.1, &mut rng, |x| {
                x[0]
            });
        assert!(!test.passed);
        assert!(test.spread > 1.5, "spread = {}", test.spread);
    }

    #[test]
    fn periodic_system_cesaro_still_converges() {
        // Even without attractivity, the Cesàro average settles (to the
        // average over the period-2 structure).
        let ms = periodic_system();
        let mut rng = SimRng::new(7);
        let avg = elton_average(&ms, &[0.3], 5_000, &mut rng, |x| x[0]);
        let tail: Vec<f64> = avg[4_000..].to_vec();
        let spread = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - tail.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 0.01, "Cesàro tail spread = {spread}");
    }
}
