//! Markov systems and place-dependent iterated function systems.
//!
//! This crate implements the mathematical machinery of the paper's Sec. VI
//! and Appendix (after Werner 2004, Elton 1987, Barnsley et al. 1989):
//!
//! * [`system::MarkovSystem`] — a family `(X_{i(e)}, w_e, p_e)_{e ∈ E}` over
//!   a directed multigraph: Borel maps `w_e` with place-dependent
//!   probabilities `p_e`, `Σ_e p_e(x) = 1` on each partition cell;
//! * [`ifs::Ifs`] — the single-vertex special case, a place-dependent
//!   iterated function system;
//! * [`operator`] — the Markov operator `P f = Σ_e p_e · (f ∘ w_e)` and its
//!   adjoint `P*` acting on particle (empirical) measures;
//! * [`contractivity`] — numerical verification of the average
//!   contractivity condition `Σ_e p_e(x) d(w_e(x), w_e(y)) ≤ a d(x, y)`;
//! * [`invariant`] — invariant-measure estimation for general systems and
//!   the exact stationary distribution of finite chains;
//! * [`ergodic`] — the unique-ergodicity verdict combining the structural
//!   graph conditions (irreducible + aperiodic = primitive) with
//!   contractivity, plus empirical Elton averages;
//! * [`coupling`] — common-noise coupling of two trajectories, the
//!   numerical counterpart of attractivity.
//!
//! # Example: a contractive two-map IFS
//!
//! ```
//! use eqimpact_markov::ifs::Ifs;
//! use eqimpact_stats::SimRng;
//!
//! // x -> x/2 and x -> x/2 + 1/2 with equal probability: the invariant
//! // measure is uniform on [0, 1].
//! let ifs = Ifs::builder(1)
//!     .map(|x| vec![0.5 * x[0]], |_| 0.5)
//!     .map(|x| vec![0.5 * x[0] + 0.5], |_| 0.5)
//!     .build()
//!     .unwrap();
//! let mut rng = SimRng::new(7);
//! let traj = ifs.trajectory(&[0.9], 1000, &mut rng);
//! let mean: f64 = traj.iter().skip(100).map(|x| x[0]).sum::<f64>() / 900.0;
//! assert!((mean - 0.5).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contractivity;
pub mod coupling;
pub mod ergodic;
pub mod ifs;
pub mod invariant;
pub mod linear;
pub mod lyapunov;
pub mod operator;
pub mod system;

pub use contractivity::ContractivityReport;
pub use ergodic::{ErgodicityVerdict, UniqueErgodicityReport};
pub use ifs::Ifs;
pub use invariant::FiniteChain;
pub use linear::{AffineMode, SwitchedAffineSystem};
pub use lyapunov::{lyapunov_exponent, LyapunovEstimate};
pub use operator::ParticleMeasure;
pub use system::{MarkovSystem, MarkovSystemError};
