//! Invariant-measure computation.
//!
//! Two regimes:
//!
//! * **Finite chains** ([`FiniteChain`]): the stationary distribution is
//!   the solution of `πᵀ P = πᵀ`, computed exactly by a linear solve; the
//!   structural conditions (irreducibility, aperiodicity) are read off the
//!   transition graph.
//! * **General Markov systems**: the invariant measure is *estimated* by
//!   iterating the adjoint operator on a particle cloud
//!   ([`estimate_invariant_measure`]) with resampling, monitoring the decay
//!   of consecutive-iterate distances.

use crate::operator::ParticleMeasure;
use crate::system::MarkovSystem;
use eqimpact_graph::DiGraph;
use eqimpact_linalg::{LinalgError, Matrix, Vector};
use eqimpact_stats::converge::wasserstein1;
use eqimpact_stats::SimRng;

/// A finite-state Markov chain with a row-stochastic transition matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FiniteChain {
    p: Matrix,
}

/// Errors from finite-chain construction and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum FiniteChainError {
    /// The matrix is not square.
    NotSquare,
    /// A row does not sum to 1 (within tolerance) or has negative entries.
    NotStochastic {
        /// Offending row.
        row: usize,
    },
    /// The stationary linear system could not be solved.
    Solve(LinalgError),
}

impl std::fmt::Display for FiniteChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FiniteChainError::NotSquare => write!(f, "transition matrix not square"),
            FiniteChainError::NotStochastic { row } => {
                write!(f, "row {row} is not a probability vector")
            }
            FiniteChainError::Solve(e) => write!(f, "stationary solve failed: {e}"),
        }
    }
}

impl std::error::Error for FiniteChainError {}

impl FiniteChain {
    /// Creates a chain from a row-stochastic matrix.
    pub fn new(p: Matrix) -> Result<Self, FiniteChainError> {
        if !p.is_square() {
            return Err(FiniteChainError::NotSquare);
        }
        for i in 0..p.rows() {
            let row = p.row_slice(i);
            if row.iter().any(|&x| x < -1e-12 || x.is_nan()) {
                return Err(FiniteChainError::NotStochastic { row: i });
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-9 {
                return Err(FiniteChainError::NotStochastic { row: i });
            }
        }
        Ok(FiniteChain { p })
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.p.rows()
    }

    /// The transition matrix.
    pub fn transition_matrix(&self) -> &Matrix {
        &self.p
    }

    /// The support graph (edge where `p_ij > 0`).
    pub fn graph(&self) -> DiGraph {
        let n = self.p.rows();
        let mut g = DiGraph::new(n);
        for i in 0..n {
            for j in 0..n {
                if self.p[(i, j)] > 0.0 {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    /// Whether the chain is irreducible (support graph strongly connected).
    pub fn is_irreducible(&self) -> bool {
        self.graph().is_strongly_connected()
    }

    /// Whether the chain is aperiodic (and irreducible).
    pub fn is_aperiodic(&self) -> bool {
        self.graph().is_aperiodic()
    }

    /// Whether the chain is ergodic in the strong sense: irreducible and
    /// aperiodic, so `P^n -> 1 πᵀ`.
    pub fn is_primitive(&self) -> bool {
        self.graph().is_primitive()
    }

    /// The stationary distribution `π` with `πᵀ P = πᵀ`, computed by
    /// replacing one equation of `(Pᵀ - I) π = 0` with the normalization
    /// `Σ π_i = 1`.
    ///
    /// For irreducible chains this is the unique stationary law. For
    /// reducible chains the solve may fail or return one of several
    /// stationary vectors; check [`Self::is_irreducible`] first when
    /// uniqueness matters.
    pub fn stationary_distribution(&self) -> Result<Vector, FiniteChainError> {
        let n = self.p.rows();
        // A = Pᵀ - I with the last row replaced by ones; b = e_n.
        let pt = self.p.transpose();
        let mut a = pt.checked_sub(&Matrix::identity(n)).expect("same shape");
        for j in 0..n {
            a[(n - 1, j)] = 1.0;
        }
        let mut b = Vector::zeros(n);
        b[n - 1] = 1.0;
        let pi = a.solve(&b).map_err(FiniteChainError::Solve)?;
        // Clamp tiny negative round-off and renormalize.
        let clamped: Vec<f64> = pi.iter().map(|&x| x.max(0.0)).collect();
        let total: f64 = clamped.iter().sum();
        if total <= 0.0 {
            return Err(FiniteChainError::Solve(LinalgError::Singular { pivot: 0 }));
        }
        Ok(Vector::from_vec(
            clamped.into_iter().map(|x| x / total).collect(),
        ))
    }

    /// Evolves a distribution one step: `νᵀ P`.
    ///
    /// # Panics
    /// Panics when `nu` has the wrong length.
    pub fn evolve(&self, nu: &Vector) -> Vector {
        self.p.transpose_mat_vec(nu)
    }

    /// Evolves `nu` for `steps` steps.
    pub fn evolve_n(&self, nu: &Vector, steps: usize) -> Vector {
        let mut v = nu.clone();
        for _ in 0..steps {
            v = self.evolve(&v);
        }
        v
    }

    /// Simulates a state trajectory of the chain.
    pub fn simulate(&self, start: usize, steps: usize, rng: &mut SimRng) -> Vec<usize> {
        assert!(start < self.state_count(), "start state out of range");
        let mut states = Vec::with_capacity(steps + 1);
        let mut s = start;
        states.push(s);
        for _ in 0..steps {
            s = rng.weighted_index(self.p.row_slice(s));
            states.push(s);
        }
        states
    }

    /// Mixing estimate: total-variation distance `‖νᵀP^n − πᵀ‖_TV` for
    /// `n = 0..steps`, from initial distribution `nu`.
    pub fn tv_decay(&self, nu: &Vector, steps: usize) -> Result<Vec<f64>, FiniteChainError> {
        let pi = self.stationary_distribution()?;
        let mut v = nu.clone();
        let mut out = Vec::with_capacity(steps + 1);
        for _ in 0..=steps {
            let tv = 0.5
                * v.iter()
                    .zip(pi.iter())
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f64>();
            out.push(tv);
            v = self.evolve(&v);
        }
        Ok(out)
    }
}

/// Result of iterating `P*` on a particle cloud.
#[derive(Debug, Clone)]
pub struct InvariantMeasureEstimate {
    /// First-coordinate samples of the final particle cloud (a proxy for
    /// the invariant measure's marginal).
    pub final_samples: Vec<f64>,
    /// 1-Wasserstein distance between consecutive iterates (first
    /// coordinate), one entry per iteration.
    pub iterate_distances: Vec<f64>,
    /// Whether the distances fell below `tolerance` before the budget ran
    /// out.
    pub converged: bool,
    /// Iterations performed.
    pub iterations: usize,
}

/// Estimates the invariant measure of a Markov system by iterating the
/// sampled adjoint operator on a particle cloud of size `particles`,
/// stopping when the 1-Wasserstein distance between consecutive iterates
/// (first coordinate) stays below `tolerance` for three consecutive
/// iterations, or after `max_iter` iterations.
pub fn estimate_invariant_measure(
    ms: &MarkovSystem,
    initial: &ParticleMeasure,
    particles: usize,
    max_iter: usize,
    tolerance: f64,
    rng: &mut SimRng,
) -> InvariantMeasureEstimate {
    let mut cloud = initial.resample(particles, rng);
    // Pad up to the target size by resampling with replacement.
    if cloud.len() < particles {
        let pts: Vec<Vec<f64>> = (0..particles)
            .map(|_| {
                let i = rng.weighted_index(cloud.weights());
                cloud.points()[i].clone()
            })
            .collect();
        cloud = ParticleMeasure::uniform(&pts);
    }

    let mut distances = Vec::with_capacity(max_iter);
    let mut below = 0usize;
    let mut iterations = 0usize;
    let mut converged = false;

    for _ in 0..max_iter {
        let next = cloud.push_forward_sampled(ms, rng);
        let a: Vec<f64> = cloud.points().iter().map(|p| p[0]).collect();
        let b: Vec<f64> = next.points().iter().map(|p| p[0]).collect();
        let d = wasserstein1(&a, &b);
        distances.push(d);
        cloud = next;
        iterations += 1;
        if d < tolerance {
            below += 1;
            if below >= 3 {
                converged = true;
                break;
            }
        } else {
            below = 0;
        }
    }

    InvariantMeasureEstimate {
        final_samples: cloud.points().iter().map(|p| p[0]).collect(),
        iterate_distances: distances,
        converged,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ifs::{affine1d, Ifs};

    fn two_state_chain() -> FiniteChain {
        FiniteChain::new(Matrix::from_rows(&[&[0.9, 0.1], &[0.4, 0.6]]).unwrap()).unwrap()
    }

    #[test]
    fn rejects_non_square_and_non_stochastic() {
        assert_eq!(
            FiniteChain::new(Matrix::zeros(2, 3)).unwrap_err(),
            FiniteChainError::NotSquare
        );
        let bad = Matrix::from_rows(&[&[0.5, 0.2], &[0.4, 0.6]]).unwrap();
        assert!(matches!(
            FiniteChain::new(bad).unwrap_err(),
            FiniteChainError::NotStochastic { row: 0 }
        ));
        let neg = Matrix::from_rows(&[&[1.5, -0.5], &[0.4, 0.6]]).unwrap();
        assert!(matches!(
            FiniteChain::new(neg).unwrap_err(),
            FiniteChainError::NotStochastic { row: 0 }
        ));
    }

    #[test]
    fn stationary_of_two_state_chain() {
        // π = (q, p)/(p+q) for the generic 2-state chain with p01=0.1, p10=0.4.
        let c = two_state_chain();
        let pi = c.stationary_distribution().unwrap();
        assert!((pi[0] - 0.8).abs() < 1e-12);
        assert!((pi[1] - 0.2).abs() < 1e-12);
        // Verify fixed point: πᵀ P = πᵀ.
        let evolved = c.evolve(&pi);
        assert!((&evolved - &pi).norm_inf() < 1e-12);
    }

    #[test]
    fn structural_classification() {
        let c = two_state_chain();
        assert!(c.is_irreducible());
        assert!(c.is_aperiodic());
        assert!(c.is_primitive());

        // Periodic 2-cycle: irreducible but not aperiodic.
        let per =
            FiniteChain::new(Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap()).unwrap();
        assert!(per.is_irreducible());
        assert!(!per.is_aperiodic());
        assert!(!per.is_primitive());
        // Its stationary distribution still exists and is uniform.
        let pi = per.stationary_distribution().unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-12);

        // Reducible chain: two absorbing states.
        let red =
            FiniteChain::new(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap()).unwrap();
        assert!(!red.is_irreducible());
    }

    #[test]
    fn evolve_n_converges_for_primitive_chain() {
        let c = two_state_chain();
        let nu = Vector::from_slice(&[0.0, 1.0]);
        let v = c.evolve_n(&nu, 200);
        assert!((v[0] - 0.8).abs() < 1e-10);
    }

    #[test]
    fn tv_decay_is_monotone_for_primitive_chain() {
        let c = two_state_chain();
        let decay = c.tv_decay(&Vector::from_slice(&[0.0, 1.0]), 30).unwrap();
        assert_eq!(decay.len(), 31);
        assert!(decay[0] > 0.5);
        assert!(decay[30] < 1e-6);
        for w in decay.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn tv_decay_fails_to_vanish_for_periodic_chain() {
        let per =
            FiniteChain::new(Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap()).unwrap();
        let decay = per.tv_decay(&Vector::from_slice(&[1.0, 0.0]), 20).unwrap();
        // The distribution oscillates and never approaches uniform.
        assert!(decay.iter().all(|&d| (d - 0.5).abs() < 1e-12));
    }

    #[test]
    fn simulation_visits_states_proportionally() {
        let c = two_state_chain();
        let mut rng = SimRng::new(11);
        let states = c.simulate(1, 50_000, &mut rng);
        let ones = states.iter().filter(|&&s| s == 1).count() as f64;
        let frac = ones / states.len() as f64;
        assert!((frac - 0.2).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn particle_estimation_of_uniform_invariant_measure() {
        let ms = Ifs::builder(1)
            .map_const(affine1d(0.5, 0.0), 0.5)
            .map_const(affine1d(0.5, 0.5), 0.5)
            .build()
            .unwrap()
            .as_markov_system()
            .clone();
        let mut rng = SimRng::new(12);
        let est = estimate_invariant_measure(
            &ms,
            &ParticleMeasure::dirac(&[0.9]),
            2000,
            200,
            0.01,
            &mut rng,
        );
        assert!(
            est.converged,
            "did not converge: {:?}",
            est.iterate_distances
        );
        // Invariant measure is U[0,1]: check mean and variance.
        let n = est.final_samples.len() as f64;
        let mean: f64 = est.final_samples.iter().sum::<f64>() / n;
        let var: f64 = est
            .final_samples
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n;
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn error_display() {
        let e = FiniteChainError::NotStochastic { row: 3 };
        assert!(e.to_string().contains("row 3"));
        assert!(FiniteChainError::NotSquare.to_string().contains("square"));
    }
}
