//! Place-dependent iterated function systems: the single-vertex special
//! case of a Markov system (Elton 1987, Barnsley-Elton-Hardin 1989).

use crate::system::{MarkovSystem, MarkovSystemBuilder, MarkovSystemError};
use eqimpact_stats::SimRng;

/// A place-dependent iterated function system on `R^dim`.
///
/// Thin wrapper over a single-vertex [`MarkovSystem`], with a builder that
/// does not need vertex indices.
#[derive(Debug, Clone)]
pub struct Ifs {
    inner: MarkovSystem,
}

/// Builder for [`Ifs`].
pub struct IfsBuilder {
    inner: MarkovSystemBuilder,
}

impl IfsBuilder {
    /// Adds a map with its place-dependent probability.
    pub fn map(
        mut self,
        w: impl Fn(&[f64]) -> Vec<f64> + Send + Sync + 'static,
        p: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.inner = self.inner.edge(0, 0, w, p);
        self
    }

    /// Adds a map with constant probability.
    pub fn map_const(self, w: impl Fn(&[f64]) -> Vec<f64> + Send + Sync + 'static, p: f64) -> Self {
        self.map(w, move |_| p)
    }

    /// Finalizes the IFS.
    pub fn build(self) -> Result<Ifs, MarkovSystemError> {
        Ok(Ifs {
            inner: self.inner.build()?,
        })
    }
}

impl Ifs {
    /// Starts building an IFS on `R^dim`.
    pub fn builder(dim: usize) -> IfsBuilder {
        IfsBuilder {
            inner: MarkovSystem::builder(dim).cell(|_| true),
        }
    }

    /// State-space dimension.
    pub fn dim(&self) -> usize {
        self.inner.dim()
    }

    /// Number of maps.
    pub fn map_count(&self) -> usize {
        self.inner.edge_count()
    }

    /// The underlying single-vertex Markov system.
    pub fn as_markov_system(&self) -> &MarkovSystem {
        &self.inner
    }

    /// Probability vector at `x` (one entry per map).
    pub fn probabilities_at(&self, x: &[f64]) -> Result<Vec<f64>, MarkovSystemError> {
        self.inner.probabilities_at(x)
    }

    /// Validates normalization at sample points.
    pub fn validate_at(&self, points: &[Vec<f64>]) -> Result<(), MarkovSystemError> {
        self.inner.validate_at(points)
    }

    /// One random step: `(map_index, next_state)`.
    pub fn step(&self, x: &[f64], rng: &mut SimRng) -> (usize, Vec<f64>) {
        self.inner.step(x, rng)
    }

    /// Simulates `steps` steps from `x0` (returns `steps + 1` states).
    pub fn trajectory(&self, x0: &[f64], steps: usize, rng: &mut SimRng) -> Vec<Vec<f64>> {
        self.inner.trajectory(x0, steps, rng)
    }

    /// Applies map `i` deterministically.
    pub fn apply(&self, i: usize, x: &[f64]) -> Vec<f64> {
        (self.inner.edges()[i].map)(x)
    }
}

/// The classic affine contraction `x -> a x + b` on `R`, packaged for
/// tests and examples.
pub fn affine1d(a: f64, b: f64) -> impl Fn(&[f64]) -> Vec<f64> + Send + Sync + 'static {
    move |x: &[f64]| vec![a * x[0] + b]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary_ifs() -> Ifs {
        // The uniform-measure IFS on [0,1].
        Ifs::builder(1)
            .map_const(affine1d(0.5, 0.0), 0.5)
            .map_const(affine1d(0.5, 0.5), 0.5)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_and_accessors() {
        let ifs = binary_ifs();
        assert_eq!(ifs.dim(), 1);
        assert_eq!(ifs.map_count(), 2);
        assert_eq!(ifs.as_markov_system().vertex_count(), 1);
        assert_eq!(ifs.probabilities_at(&[0.3]).unwrap(), vec![0.5, 0.5]);
        ifs.validate_at(&[vec![0.0], vec![0.5], vec![1.0]]).unwrap();
    }

    #[test]
    fn apply_is_deterministic() {
        let ifs = binary_ifs();
        assert_eq!(ifs.apply(0, &[0.8]), vec![0.4]);
        assert_eq!(ifs.apply(1, &[0.8]), vec![0.9]);
    }

    #[test]
    fn trajectory_stays_in_unit_interval() {
        let ifs = binary_ifs();
        let mut rng = SimRng::new(9);
        for x in ifs.trajectory(&[0.5], 500, &mut rng) {
            assert!((0.0..=1.0).contains(&x[0]));
        }
    }

    #[test]
    fn uniform_invariant_measure_moments() {
        let ifs = binary_ifs();
        let mut rng = SimRng::new(10);
        let traj = ifs.trajectory(&[0.1], 50_000, &mut rng);
        let tail: Vec<f64> = traj.iter().skip(1000).map(|x| x[0]).collect();
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        let var: f64 =
            tail.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / tail.len() as f64;
        // Uniform [0,1]: mean 1/2, variance 1/12.
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.01, "var = {var}");
    }

    #[test]
    fn place_dependent_probabilities() {
        // Probability of the "up" map grows with x: p_up(x) = x, p_down = 1 - x.
        let ifs = Ifs::builder(1)
            .map(affine1d(0.9, 0.1), |x| x[0].clamp(0.0, 1.0))
            .map(affine1d(0.9, 0.0), |x| 1.0 - x[0].clamp(0.0, 1.0))
            .build()
            .unwrap();
        ifs.validate_at(&[vec![0.0], vec![0.4], vec![1.0]]).unwrap();
        let p = ifs.probabilities_at(&[0.25]).unwrap();
        assert!((p[0] - 0.25).abs() < 1e-15);
        assert!((p[1] - 0.75).abs() < 1e-15);
    }

    #[test]
    fn degenerate_probability_step_panics() {
        let ifs = Ifs::builder(1)
            .map_const(affine1d(1.0, 0.0), 0.0)
            .build()
            .unwrap();
        let mut rng = SimRng::new(1);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ifs.step(&[0.0], &mut rng)));
        assert!(result.is_err());
    }
}
