//! Common-noise coupling of trajectories.
//!
//! The conclusion of the paper points to Hairer-Mattingly-Scheutzow
//! asymptotic-coupling arguments. Numerically, the fingerprint of an
//! attractive invariant measure is that two copies of the chain driven by
//! the **same** randomness but started at different points approach each
//! other: `d(x_k, y_k) -> 0`. This module runs that experiment.

use crate::system::MarkovSystem;
use eqimpact_linalg::norm::MetricKind;
use eqimpact_stats::SimRng;

/// Trace of a coupling experiment.
#[derive(Debug, Clone)]
pub struct CouplingTrace {
    /// Distance `d(x_k, y_k)` per step, including step 0.
    pub distances: Vec<f64>,
    /// First step at which the distance fell below the meeting threshold,
    /// if it did.
    pub coupled_at: Option<usize>,
}

impl CouplingTrace {
    /// Whether the pair met (within the threshold used by the run).
    pub fn coupled(&self) -> bool {
        self.coupled_at.is_some()
    }

    /// Final distance.
    pub fn final_distance(&self) -> f64 {
        *self.distances.last().expect("at least initial distance")
    }
}

/// Runs two copies of `ms` from `x0` and `y0` under **shared** edge
/// randomness for `steps` steps.
///
/// The shared-noise construction is the synchronous coupling: at each step
/// both copies draw the same uniform variate; each copy maps it through its
/// own local edge probabilities. When both points lie in the same cell with
/// identical probability functions, they choose the same edge, so
/// contractive maps pull them together.
pub fn synchronous_coupling(
    ms: &MarkovSystem,
    x0: &[f64],
    y0: &[f64],
    steps: usize,
    metric: MetricKind,
    meet_threshold: f64,
    rng: &mut SimRng,
) -> CouplingTrace {
    let mut x = x0.to_vec();
    let mut y = y0.to_vec();
    let mut distances = Vec::with_capacity(steps + 1);
    let mut coupled_at = None;

    let d0 = metric.distance(&x, &y);
    distances.push(d0);
    if d0 <= meet_threshold {
        coupled_at = Some(0);
    }

    for k in 1..=steps {
        let u = rng.uniform();
        x = step_with_uniform(ms, &x, u);
        y = step_with_uniform(ms, &y, u);
        let d = metric.distance(&x, &y);
        distances.push(d);
        if coupled_at.is_none() && d <= meet_threshold {
            coupled_at = Some(k);
        }
    }

    CouplingTrace {
        distances,
        coupled_at,
    }
}

/// One step using a pre-drawn uniform variate `u ∈ [0, 1)` for the edge
/// choice (inverse-CDF over the local outgoing probabilities).
fn step_with_uniform(ms: &MarkovSystem, x: &[f64], u: f64) -> Vec<f64> {
    let v = ms.classify(x).expect("point in no cell");
    let probs = ms.probabilities_at(x).expect("bad probabilities");
    let mut acc = 0.0;
    let mut chosen = ms.outgoing(v)[0];
    for (&ei, &p) in ms.outgoing(v).iter().zip(&probs) {
        acc += p;
        chosen = ei;
        if u < acc {
            break;
        }
    }
    (ms.edges()[chosen].map)(x)
}

/// Average coupling time over `n_pairs` random pairs of initial conditions
/// from `sampler`; returns `None` when no pair coupled within `steps`.
pub fn mean_coupling_time(
    ms: &MarkovSystem,
    steps: usize,
    metric: MetricKind,
    meet_threshold: f64,
    n_pairs: usize,
    rng: &mut SimRng,
    mut sampler: impl FnMut(&mut SimRng) -> Vec<f64>,
) -> Option<f64> {
    let mut times = Vec::new();
    for _ in 0..n_pairs {
        let x0 = sampler(rng);
        let y0 = sampler(rng);
        let trace = synchronous_coupling(ms, &x0, &y0, steps, metric, meet_threshold, rng);
        if let Some(t) = trace.coupled_at {
            times.push(t as f64);
        }
    }
    if times.is_empty() {
        None
    } else {
        Some(times.iter().sum::<f64>() / times.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contractivity::box_sampler;
    use crate::ifs::{affine1d, Ifs};

    fn contractive_system() -> MarkovSystem {
        Ifs::builder(1)
            .map_const(affine1d(0.5, 0.0), 0.5)
            .map_const(affine1d(0.5, 0.5), 0.5)
            .build()
            .unwrap()
            .as_markov_system()
            .clone()
    }

    fn expanding_system() -> MarkovSystem {
        // Doubling map mod 1 (discontinuous at 1/2 but fine pointwise):
        // chaotic, distances do not contract.
        Ifs::builder(1)
            .map_const(|x: &[f64]| vec![(2.0 * x[0]).fract()], 1.0)
            .build()
            .unwrap()
            .as_markov_system()
            .clone()
    }

    #[test]
    fn contractive_coupling_distance_decays_geometrically() {
        let ms = contractive_system();
        let mut rng = SimRng::new(1);
        let trace = synchronous_coupling(
            &ms,
            &[0.0],
            &[1.0],
            60,
            MetricKind::Euclidean,
            1e-12,
            &mut rng,
        );
        assert_eq!(trace.distances.len(), 61);
        assert_eq!(trace.distances[0], 1.0);
        // Same cell + identical probabilities ⇒ same map each step ⇒
        // distance exactly halves each step.
        assert!((trace.distances[10] - 0.5f64.powi(10)).abs() < 1e-12);
        assert!(trace.coupled(), "never coupled");
        assert!(trace.final_distance() < 1e-12);
    }

    #[test]
    fn expanding_system_does_not_couple() {
        let ms = expanding_system();
        let mut rng = SimRng::new(2);
        let trace = synchronous_coupling(
            &ms,
            &[0.1],
            &[0.10001],
            30,
            MetricKind::Euclidean,
            1e-9,
            &mut rng,
        );
        // The doubling map expands: initially close points separate.
        assert!(!trace.coupled());
        assert!(trace.final_distance() > 1e-4);
    }

    #[test]
    fn mean_coupling_time_finite_for_contractive() {
        let ms = contractive_system();
        let mut rng = SimRng::new(3);
        let t = mean_coupling_time(
            &ms,
            200,
            MetricKind::Euclidean,
            1e-9,
            20,
            &mut rng,
            box_sampler(vec![0.0], vec![1.0]),
        );
        let t = t.expect("contractive system must couple");
        assert!(t > 0.0 && t < 100.0, "mean coupling time = {t}");
    }

    #[test]
    fn mean_coupling_time_none_for_expanding() {
        let ms = expanding_system();
        let mut rng = SimRng::new(4);
        let t = mean_coupling_time(
            &ms,
            50,
            MetricKind::Euclidean,
            1e-12,
            10,
            &mut rng,
            box_sampler(vec![0.0], vec![1.0]),
        );
        assert!(t.is_none());
    }

    #[test]
    fn identical_starts_couple_immediately() {
        let ms = contractive_system();
        let mut rng = SimRng::new(5);
        let trace = synchronous_coupling(
            &ms,
            &[0.4],
            &[0.4],
            10,
            MetricKind::Euclidean,
            1e-12,
            &mut rng,
        );
        assert_eq!(trace.coupled_at, Some(0));
    }
}
