//! Switched linear (affine) stochastic systems: the "linear systems" case
//! of the paper's Sec. VI.
//!
//! The paper notes that for linear systems unique ergodicity "is a direct
//! consequence of (Werner, 2004) and the observation that the necessary
//! contractivity properties follow from the internal asymptotic stability
//! of controller and filter". This module makes that route executable: a
//! [`SwitchedAffineSystem`] is a family of affine maps
//! `x ↦ A_j x + b_j` chosen with probabilities `p_j`; its **average
//! contraction factor** under the ℓ² metric is bounded by
//! `Σ_j p_j ‖A_j‖₂`, and each `‖A_j‖₂` is certified here via the spectral
//! radius of `A_jᵀA_j`. Stable mode matrices therefore certify average
//! contractivity symbolically — no sampling sweep needed — and the system
//! lowers into the general [`MarkovSystem`] machinery for everything else.

use crate::system::{MarkovSystem, MarkovSystemError};
use eqimpact_linalg::power::spectral_radius;
use eqimpact_linalg::{Matrix, Vector};

/// One mode of a switched affine system: `x ↦ A x + b` with probability
/// weight `p`.
#[derive(Debug, Clone, PartialEq)]
pub struct AffineMode {
    /// The linear part `A`.
    pub a: Matrix,
    /// The offset `b`.
    pub b: Vector,
    /// The (unnormalized) probability weight.
    pub weight: f64,
}

/// Errors from switched-system construction.
#[derive(Debug, Clone, PartialEq)]
pub enum SwitchedSystemError {
    /// No modes supplied.
    Empty,
    /// A mode's matrix is not square or disagrees with the state dimension.
    DimensionMismatch {
        /// Index of the offending mode.
        mode: usize,
    },
    /// A weight is negative or non-finite, or all weights are zero.
    BadWeights,
    /// Lowering to a Markov system failed.
    Lowering(MarkovSystemError),
}

impl std::fmt::Display for SwitchedSystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwitchedSystemError::Empty => write!(f, "switched system has no modes"),
            SwitchedSystemError::DimensionMismatch { mode } => {
                write!(f, "mode {mode} has inconsistent dimensions")
            }
            SwitchedSystemError::BadWeights => write!(f, "invalid mode weights"),
            SwitchedSystemError::Lowering(e) => write!(f, "lowering failed: {e}"),
        }
    }
}

impl std::error::Error for SwitchedSystemError {}

/// A switched affine stochastic system on `R^n`.
#[derive(Debug, Clone)]
pub struct SwitchedAffineSystem {
    dim: usize,
    modes: Vec<AffineMode>,
    /// Normalized probabilities.
    probs: Vec<f64>,
}

impl SwitchedAffineSystem {
    /// Builds the system, validating dimensions and weights.
    pub fn new(modes: Vec<AffineMode>) -> Result<Self, SwitchedSystemError> {
        if modes.is_empty() {
            return Err(SwitchedSystemError::Empty);
        }
        let dim = modes[0].b.len();
        for (i, m) in modes.iter().enumerate() {
            if !m.a.is_square() || m.a.rows() != dim || m.b.len() != dim {
                return Err(SwitchedSystemError::DimensionMismatch { mode: i });
            }
            if m.weight < 0.0 || !m.weight.is_finite() {
                return Err(SwitchedSystemError::BadWeights);
            }
        }
        let total: f64 = modes.iter().map(|m| m.weight).sum();
        if total <= 0.0 {
            return Err(SwitchedSystemError::BadWeights);
        }
        let probs = modes.iter().map(|m| m.weight / total).collect();
        Ok(SwitchedAffineSystem { dim, modes, probs })
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of modes.
    pub fn mode_count(&self) -> usize {
        self.modes.len()
    }

    /// The normalized mode probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// The ℓ²-induced operator norm of mode `j`'s matrix, certified via
    /// `‖A‖₂ = sqrt(ρ(AᵀA))`.
    pub fn mode_norm(&self, j: usize) -> f64 {
        let a = &self.modes[j].a;
        let gram = a.gram();
        spectral_radius(&gram)
            .expect("gram matrix is square")
            .max(0.0)
            .sqrt()
    }

    /// Certified upper bound on the average contraction factor:
    /// `Σ_j p_j ‖A_j‖₂`. A value `< 1` proves average contractivity on all
    /// of `R^n` (state-independent probabilities), hence — combined with
    /// the single-vertex graph being trivially primitive — unique
    /// ergodicity by the paper's Sec. VI route.
    pub fn certified_contraction_factor(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(j, p)| p * self.mode_norm(j))
            .sum()
    }

    /// Whether the certificate proves unique ergodicity.
    pub fn is_certified_uniquely_ergodic(&self) -> bool {
        self.certified_contraction_factor() < 1.0
    }

    /// The mean-dynamics fixed point `x* = (I − Ā)⁻¹ b̄` of the averaged
    /// system, where `Ā = Σ p_j A_j`, `b̄ = Σ p_j b_j` — the mean of the
    /// invariant measure when every mode shares the same `A` (and a useful
    /// anchor otherwise). Errors when `I − Ā` is singular.
    pub fn mean_fixed_point(&self) -> Result<Vector, eqimpact_linalg::LinalgError> {
        let n = self.dim;
        let mut a_bar = Matrix::zeros(n, n);
        let mut b_bar = Vector::zeros(n);
        for (m, &p) in self.modes.iter().zip(&self.probs) {
            a_bar = a_bar.checked_add(&m.a.scaled(p)).expect("same shape");
            b_bar.axpy(p, &m.b).expect("same length");
        }
        let lhs = Matrix::identity(n).checked_sub(&a_bar).expect("same shape");
        lhs.solve(&b_bar)
    }

    /// Lowers the system into the general [`MarkovSystem`] machinery
    /// (single vertex, one edge per mode).
    pub fn to_markov_system(&self) -> Result<MarkovSystem, SwitchedSystemError> {
        let mut builder = MarkovSystem::builder(self.dim).cell(|_| true);
        for (m, &p) in self.modes.iter().zip(&self.probs) {
            let a = m.a.clone();
            let b = m.b.clone();
            builder = builder.edge(
                0,
                0,
                move |x: &[f64]| {
                    let v = Vector::from_slice(x);
                    let mut out = a.mat_vec(&v);
                    out += &b;
                    out.into_vec()
                },
                move |_| p,
            );
        }
        builder.build().map_err(SwitchedSystemError::Lowering)
    }
}

/// Builds the closed-loop switched system of a scalar linear plant
/// `x' = a x + u` under a stochastic affine feedback `u = -g x + r_j` with
/// mode offsets `r_j` chosen with the given weights — the simplest
/// "internally stable controller ⇒ contractive closed loop" construction.
pub fn scalar_closed_loop(
    a: f64,
    gain: f64,
    offsets: &[(f64, f64)],
) -> Result<SwitchedAffineSystem, SwitchedSystemError> {
    let modes = offsets
        .iter()
        .map(|&(r, w)| AffineMode {
            a: Matrix::from_vec(1, 1, vec![a - gain]).expect("1x1"),
            b: Vector::from_slice(&[r]),
            weight: w,
        })
        .collect();
    SwitchedAffineSystem::new(modes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqimpact_linalg::norm::MetricKind;
    use eqimpact_stats::SimRng;

    fn rotation_scaled(rho: f64, theta: f64) -> Matrix {
        let (s, c) = theta.sin_cos();
        Matrix::from_rows(&[&[rho * c, -rho * s], &[rho * s, rho * c]]).unwrap()
    }

    fn two_mode_planar(rho: f64) -> SwitchedAffineSystem {
        SwitchedAffineSystem::new(vec![
            AffineMode {
                a: rotation_scaled(rho, 0.3),
                b: Vector::from_slice(&[1.0, 0.0]),
                weight: 1.0,
            },
            AffineMode {
                a: rotation_scaled(rho, -0.7),
                b: Vector::from_slice(&[0.0, 1.0]),
                weight: 3.0,
            },
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_validation() {
        let sys = two_mode_planar(0.8);
        assert_eq!(sys.dim(), 2);
        assert_eq!(sys.mode_count(), 2);
        assert!((sys.probabilities()[0] - 0.25).abs() < 1e-15);
        assert!((sys.probabilities()[1] - 0.75).abs() < 1e-15);

        assert_eq!(
            SwitchedAffineSystem::new(vec![]).unwrap_err(),
            SwitchedSystemError::Empty
        );
        let bad_dim = SwitchedAffineSystem::new(vec![AffineMode {
            a: Matrix::zeros(2, 3),
            b: Vector::zeros(2),
            weight: 1.0,
        }]);
        assert!(matches!(
            bad_dim.unwrap_err(),
            SwitchedSystemError::DimensionMismatch { mode: 0 }
        ));
        let bad_w = SwitchedAffineSystem::new(vec![AffineMode {
            a: Matrix::identity(1),
            b: Vector::zeros(1),
            weight: -1.0,
        }]);
        assert_eq!(bad_w.unwrap_err(), SwitchedSystemError::BadWeights);
    }

    #[test]
    fn mode_norm_of_scaled_rotation_is_the_scale() {
        let sys = two_mode_planar(0.8);
        // Scaled rotations have operator norm exactly rho.
        assert!((sys.mode_norm(0) - 0.8).abs() < 1e-6);
        assert!((sys.mode_norm(1) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn stable_modes_certify_unique_ergodicity() {
        let stable = two_mode_planar(0.8);
        assert!((stable.certified_contraction_factor() - 0.8).abs() < 1e-6);
        assert!(stable.is_certified_uniquely_ergodic());

        let unstable = two_mode_planar(1.2);
        assert!(!unstable.is_certified_uniquely_ergodic());
    }

    #[test]
    fn certificate_agrees_with_sampled_contractivity() {
        let sys = two_mode_planar(0.7);
        let ms = sys.to_markov_system().unwrap();
        let mut rng = SimRng::new(1);
        let report = crate::contractivity::estimate_contraction_factor(
            &ms,
            MetricKind::Euclidean,
            400,
            &mut rng,
            crate::contractivity::box_sampler(vec![-3.0, -3.0], vec![3.0, 3.0]),
        );
        // Sampled factor can exceed the per-mode certificate only by the
        // averaging slack; for a common scale both should be ~0.7.
        assert!(
            (report.estimated_factor - 0.7).abs() < 0.05,
            "sampled = {}",
            report.estimated_factor
        );
        assert!(report.estimated_factor <= sys.certified_contraction_factor() + 0.05);
    }

    #[test]
    fn mean_fixed_point_of_common_a() {
        // x' = 0.5 x + b_j, b ∈ {0, 1} equally: mean fixed point solves
        // m = 0.5 m + 0.5 -> m = 1.
        let sys = SwitchedAffineSystem::new(vec![
            AffineMode {
                a: Matrix::from_vec(1, 1, vec![0.5]).unwrap(),
                b: Vector::from_slice(&[0.0]),
                weight: 1.0,
            },
            AffineMode {
                a: Matrix::from_vec(1, 1, vec![0.5]).unwrap(),
                b: Vector::from_slice(&[1.0]),
                weight: 1.0,
            },
        ])
        .unwrap();
        let m = sys.mean_fixed_point().unwrap();
        assert!((m[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lowered_system_trajectory_mean_matches_fixed_point() {
        let sys = SwitchedAffineSystem::new(vec![
            AffineMode {
                a: Matrix::from_vec(1, 1, vec![0.5]).unwrap(),
                b: Vector::from_slice(&[0.0]),
                weight: 1.0,
            },
            AffineMode {
                a: Matrix::from_vec(1, 1, vec![0.5]).unwrap(),
                b: Vector::from_slice(&[1.0]),
                weight: 1.0,
            },
        ])
        .unwrap();
        let ms = sys.to_markov_system().unwrap();
        let mut rng = SimRng::new(2);
        let traj = ms.trajectory(&[5.0], 20_000, &mut rng);
        let mean: f64 = traj.iter().skip(100).map(|x| x[0]).sum::<f64>() / 19_901.0;
        assert!((mean - 1.0).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn scalar_closed_loop_construction() {
        // Unstable plant a = 1.2 stabilized by gain 0.8: closed-loop slope
        // 0.4 < 1 -> certified uniquely ergodic.
        let sys = scalar_closed_loop(1.2, 0.8, &[(0.0, 1.0), (0.5, 1.0)]).unwrap();
        assert!(sys.is_certified_uniquely_ergodic());
        assert!((sys.certified_contraction_factor() - 0.4).abs() < 1e-9);
        // Insufficient gain leaves the loop expanding.
        let weak = scalar_closed_loop(1.2, 0.1, &[(0.0, 1.0)]).unwrap();
        assert!(!weak.is_certified_uniquely_ergodic());
    }

    #[test]
    fn error_display() {
        assert!(SwitchedSystemError::Empty.to_string().contains("no modes"));
        assert!(SwitchedSystemError::BadWeights
            .to_string()
            .contains("weights"));
    }
}
