//! The Markov operator `P` and its adjoint `P*` on particle measures.
//!
//! For a Markov system, `P f(x) = Σ_e p_e(x) f(w_e(x))` acts on bounded
//! Borel functions, and the adjoint `P* ν(f) = ∫ P f dν` acts on Borel
//! probability measures. An invariant measure satisfies `P* µ = µ`; it is
//! *attractive* when `(P*)^n ν → µ` weakly for every ν.
//!
//! We represent measures by weighted particle clouds ([`ParticleMeasure`])
//! and implement `P*` two ways:
//!
//! * **exact splitting** ([`ParticleMeasure::push_forward_split`]) — each
//!   particle splits into one child per positive-probability edge; exact
//!   but grows the support (use with pruning);
//! * **Monte Carlo** ([`ParticleMeasure::push_forward_sampled`]) — each
//!   particle follows one random edge; keeps the cloud size fixed.

use crate::system::MarkovSystem;
use eqimpact_stats::SimRng;

/// A finitely supported (particle) probability measure on `R^n`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParticleMeasure {
    points: Vec<Vec<f64>>,
    weights: Vec<f64>,
}

impl ParticleMeasure {
    /// A Dirac measure at `x`.
    pub fn dirac(x: &[f64]) -> Self {
        ParticleMeasure {
            points: vec![x.to_vec()],
            weights: vec![1.0],
        }
    }

    /// The uniform empirical measure on a set of points.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn uniform(points: &[Vec<f64>]) -> Self {
        assert!(!points.is_empty(), "ParticleMeasure: no points");
        let w = 1.0 / points.len() as f64;
        ParticleMeasure {
            points: points.to_vec(),
            weights: vec![w; points.len()],
        }
    }

    /// A weighted measure (weights normalized internally).
    ///
    /// # Panics
    /// Panics on empty/mismatched input or non-positive total weight.
    pub fn weighted(points: Vec<Vec<f64>>, weights: Vec<f64>) -> Self {
        assert_eq!(points.len(), weights.len(), "ParticleMeasure: mismatch");
        assert!(!points.is_empty(), "ParticleMeasure: no points");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "ParticleMeasure: bad weights"
        );
        ParticleMeasure {
            points,
            weights: weights.into_iter().map(|w| w / total).collect(),
        }
    }

    /// Number of support particles.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the support is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The support points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// The normalized weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Integrates a function: `ν(f) = Σ w_i f(x_i)`.
    pub fn integrate(&self, f: impl Fn(&[f64]) -> f64) -> f64 {
        self.points
            .iter()
            .zip(&self.weights)
            .map(|(x, &w)| w * f(x))
            .sum()
    }

    /// Mean of the first coordinate (common scalar observable).
    pub fn mean_coord(&self, coord: usize) -> f64 {
        self.integrate(|x| x[coord])
    }

    /// Exact push-forward under `P*`: every particle splits across all
    /// positive-probability outgoing edges.
    ///
    /// # Panics
    /// Panics if any particle lies in no cell of the system.
    pub fn push_forward_split(&self, ms: &MarkovSystem) -> ParticleMeasure {
        let mut points = Vec::new();
        let mut weights = Vec::new();
        for (x, &w) in self.points.iter().zip(&self.weights) {
            let v = ms.classify(x).expect("particle in no cell");
            let probs = ms.probabilities_at(x).expect("bad probabilities");
            for (&ei, &p) in ms.outgoing(v).iter().zip(&probs) {
                if p > 0.0 {
                    points.push((ms.edges()[ei].map)(x));
                    weights.push(w * p);
                }
            }
        }
        ParticleMeasure::weighted(points, weights)
    }

    /// Monte Carlo push-forward: each particle takes one random step.
    pub fn push_forward_sampled(&self, ms: &MarkovSystem, rng: &mut SimRng) -> ParticleMeasure {
        let points = self
            .points
            .iter()
            .map(|x| ms.step(x, rng).1)
            .collect::<Vec<_>>();
        ParticleMeasure {
            points,
            weights: self.weights.clone(),
        }
    }

    /// Prunes the support to at most `max_particles` by weight-proportional
    /// multinomial resampling.
    ///
    /// Multinomial (rather than systematic) resampling is deliberate: the
    /// particle order produced by [`Self::push_forward_split`] is strongly
    /// correlated with the state (children are emitted lower-map-first), so
    /// stride-based schemes would subsample a biased sweep of the support.
    pub fn resample(&self, max_particles: usize, rng: &mut SimRng) -> ParticleMeasure {
        assert!(max_particles > 0, "resample: zero target size");
        if self.points.len() <= max_particles {
            return self.clone();
        }
        let out: Vec<Vec<f64>> = (0..max_particles)
            .map(|_| self.points[rng.weighted_index(&self.weights)].clone())
            .collect();
        ParticleMeasure::uniform(&out)
    }

    /// Collapses duplicate support points (exact coordinate equality),
    /// summing their weights. Useful for finite-state systems where exact
    /// splitting revisits the same points.
    pub fn coalesce(&self) -> ParticleMeasure {
        let mut map: Vec<(Vec<f64>, f64)> = Vec::new();
        for (x, &w) in self.points.iter().zip(&self.weights) {
            if let Some(entry) = map.iter_mut().find(|(p, _)| p == x) {
                entry.1 += w;
            } else {
                map.push((x.clone(), w));
            }
        }
        let (points, weights): (Vec<_>, Vec<_>) = map.into_iter().unzip();
        ParticleMeasure::weighted(points, weights)
    }

    /// Samples of the first coordinate drawn i.i.d. from the measure, for
    /// use with KS / Wasserstein diagnostics.
    pub fn sample_coord(&self, coord: usize, n: usize, rng: &mut SimRng) -> Vec<f64> {
        (0..n)
            .map(|_| {
                let i = rng.weighted_index(&self.weights);
                self.points[i][coord]
            })
            .collect()
    }
}

/// Applies the Markov operator to a function at a point:
/// `P f(x) = Σ_e p_e(x) f(w_e(x))`.
///
/// # Panics
/// Panics if `x` lies in no cell.
pub fn markov_operator_apply(ms: &MarkovSystem, f: impl Fn(&[f64]) -> f64, x: &[f64]) -> f64 {
    let v = ms.classify(x).expect("point in no cell");
    let probs = ms.probabilities_at(x).expect("bad probabilities");
    ms.outgoing(v)
        .iter()
        .zip(&probs)
        .map(|(&ei, &p)| {
            if p > 0.0 {
                p * f(&(ms.edges()[ei].map)(x))
            } else {
                0.0
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ifs::{affine1d, Ifs};

    fn binary_ifs_system() -> MarkovSystem {
        Ifs::builder(1)
            .map_const(affine1d(0.5, 0.0), 0.5)
            .map_const(affine1d(0.5, 0.5), 0.5)
            .build()
            .unwrap()
            .as_markov_system()
            .clone()
    }

    #[test]
    fn dirac_and_uniform_construction() {
        let d = ParticleMeasure::dirac(&[1.0, 2.0]);
        assert_eq!(d.len(), 1);
        assert_eq!(d.weights(), &[1.0]);
        let u = ParticleMeasure::uniform(&[vec![0.0], vec![1.0]]);
        assert_eq!(u.weights(), &[0.5, 0.5]);
        assert!(!u.is_empty());
    }

    #[test]
    fn weighted_normalizes() {
        let m = ParticleMeasure::weighted(vec![vec![0.0], vec![1.0]], vec![2.0, 6.0]);
        assert!((m.weights()[0] - 0.25).abs() < 1e-15);
        assert!((m.weights()[1] - 0.75).abs() < 1e-15);
    }

    #[test]
    fn integrate_and_mean() {
        let m = ParticleMeasure::weighted(vec![vec![0.0], vec![2.0]], vec![1.0, 1.0]);
        assert!((m.integrate(|x| x[0] * x[0]) - 2.0).abs() < 1e-15);
        assert!((m.mean_coord(0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn split_push_forward_of_dirac() {
        let ms = binary_ifs_system();
        let nu = ParticleMeasure::dirac(&[0.0]);
        let next = nu.push_forward_split(&ms);
        // Two children: 0.0 and 0.5, each with weight 0.5.
        assert_eq!(next.len(), 2);
        let mean = next.mean_coord(0);
        assert!((mean - 0.25).abs() < 1e-15);
    }

    #[test]
    fn iterated_split_converges_to_uniform_mean() {
        let ms = binary_ifs_system();
        let mut nu = ParticleMeasure::dirac(&[0.9]);
        for _ in 0..12 {
            nu = nu.push_forward_split(&ms);
        }
        // After n splits the measure is uniform on dyadic points; mean -> 1/2.
        assert!((nu.mean_coord(0) - 0.5).abs() < 1e-3);
        assert_eq!(nu.len(), 1 << 12);
    }

    #[test]
    fn sampled_push_forward_preserves_size() {
        let ms = binary_ifs_system();
        let mut rng = SimRng::new(3);
        let nu = ParticleMeasure::uniform(&vec![vec![0.3]; 100]);
        let next = nu.push_forward_sampled(&ms, &mut rng);
        assert_eq!(next.len(), 100);
        for p in next.points() {
            assert!(p[0] == 0.15 || p[0] == 0.65);
        }
    }

    #[test]
    fn resample_caps_support() {
        let ms = binary_ifs_system();
        let mut rng = SimRng::new(4);
        let mut nu = ParticleMeasure::dirac(&[0.5]);
        for _ in 0..10 {
            nu = nu.push_forward_split(&ms).resample(64, &mut rng);
        }
        assert!(nu.len() <= 64);
        // Mean should still approximate the invariant mean 1/2.
        assert!((nu.mean_coord(0) - 0.5).abs() < 0.15);
    }

    #[test]
    fn coalesce_merges_duplicates() {
        let m =
            ParticleMeasure::weighted(vec![vec![1.0], vec![1.0], vec![2.0]], vec![0.25, 0.25, 0.5]);
        let c = m.coalesce();
        assert_eq!(c.len(), 2);
        let w1 = c
            .points()
            .iter()
            .zip(c.weights())
            .find(|(p, _)| p[0] == 1.0)
            .map(|(_, &w)| w)
            .unwrap();
        assert!((w1 - 0.5).abs() < 1e-15);
    }

    #[test]
    fn operator_apply_matches_hand_computation() {
        let ms = binary_ifs_system();
        // P f(x) with f = identity: 0.5*(x/2) + 0.5*(x/2 + 1/2) = x/2 + 1/4.
        let pf = markov_operator_apply(&ms, |x| x[0], &[0.6]);
        assert!((pf - 0.55).abs() < 1e-15);
    }

    #[test]
    fn operator_duality() {
        // ∫ P f dν must equal (P*ν)(f).
        let ms = binary_ifs_system();
        let nu = ParticleMeasure::uniform(&[vec![0.1], vec![0.7], vec![0.4]]);
        let f = |x: &[f64]| (3.0 * x[0]).sin();
        let lhs = nu.integrate(|x| markov_operator_apply(&ms, f, x));
        let rhs = nu.push_forward_split(&ms).integrate(f);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn sample_coord_draws_from_support() {
        let m = ParticleMeasure::weighted(vec![vec![1.0], vec![5.0]], vec![0.9, 0.1]);
        let mut rng = SimRng::new(8);
        let samples = m.sample_coord(0, 1000, &mut rng);
        let ones = samples.iter().filter(|&&x| x == 1.0).count();
        assert!(ones > 800 && ones < 980, "ones = {ones}");
    }
}
