//! Top Lyapunov exponents of random matrix products.
//!
//! For a switched linear system `x(k+1) = A_{σ(k)} x(k)` with i.i.d. mode
//! draws, the top Lyapunov exponent
//! `λ = lim (1/k) log ‖A_{σ(k-1)} ⋯ A_{σ(0)}‖` decides almost-sure
//! stability: `λ < 0` means trajectories contract exponentially even when
//! some individual modes are expanding — a strictly sharper criterion than
//! the norm-based certificate of [`crate::linear`], and the log-scale
//! analogue of the paper's average-contractivity condition.

use eqimpact_linalg::{Matrix, Vector};
use eqimpact_stats::SimRng;

/// Result of a Lyapunov-exponent estimation run.
#[derive(Debug, Clone)]
pub struct LyapunovEstimate {
    /// The estimated top exponent (natural log per step).
    pub exponent: f64,
    /// Standard error across the independent replicas.
    pub std_error: f64,
    /// Steps per replica.
    pub steps: usize,
    /// Number of replicas averaged.
    pub replicas: usize,
}

impl LyapunovEstimate {
    /// Whether the estimate certifies almost-sure exponential stability
    /// with a margin of two standard errors.
    pub fn is_stable(&self) -> bool {
        self.exponent + 2.0 * self.std_error < 0.0
    }
}

/// Estimates the top Lyapunov exponent of the i.i.d. switched system given
/// by `(matrices, weights)` using the norm-growth method with periodic
/// renormalization, averaged over `replicas` independent runs.
///
/// A zero-length trajectory budget (`steps == 0` or `replicas == 0`)
/// carries no information, so it yields an explicitly inconclusive
/// estimate — exponent `0.0` with infinite standard error, which
/// [`LyapunovEstimate::is_stable`] never certifies — rather than a panic
/// or a NaN.
///
/// # Panics
/// Panics for empty/mismatched input, non-square or differently sized
/// matrices, or invalid weights.
pub fn lyapunov_exponent(
    matrices: &[Matrix],
    weights: &[f64],
    steps: usize,
    replicas: usize,
    rng: &mut SimRng,
) -> LyapunovEstimate {
    assert!(!matrices.is_empty(), "lyapunov: no matrices");
    assert_eq!(matrices.len(), weights.len(), "lyapunov: weights mismatch");
    if steps == 0 || replicas == 0 {
        return LyapunovEstimate {
            exponent: 0.0,
            std_error: f64::INFINITY,
            steps,
            replicas,
        };
    }
    let n = matrices[0].rows();
    for m in matrices {
        assert!(
            m.is_square() && m.rows() == n,
            "lyapunov: inconsistent matrix sizes"
        );
    }

    let mut per_replica = Vec::with_capacity(replicas);
    for r in 0..replicas {
        let mut stream = rng.split(r as u64);
        // Random unit start to avoid alignment with invariant subspaces.
        let mut v = Vector::from_fn(n, |_| stream.standard_normal());
        let norm = v.norm2().max(1e-300);
        v.scale_mut(1.0 / norm);

        let mut log_growth = 0.0;
        for _ in 0..steps {
            let j = stream.weighted_index(weights);
            v = matrices[j].mat_vec(&v);
            let norm = v.norm2();
            if norm < 1e-300 {
                // The product annihilated the vector: exponent is -inf;
                // report a very negative value.
                log_growth = f64::NEG_INFINITY;
                break;
            }
            log_growth += norm.ln();
            v.scale_mut(1.0 / norm);
        }
        per_replica.push(if log_growth.is_finite() {
            log_growth / steps as f64
        } else {
            -1e3
        });
    }

    let mean: f64 = per_replica.iter().sum::<f64>() / replicas as f64;
    let var: f64 = per_replica
        .iter()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / replicas as f64;
    LyapunovEstimate {
        exponent: mean,
        std_error: (var / replicas as f64).sqrt(),
        steps,
        replicas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag2(a: f64, b: f64) -> Matrix {
        Matrix::from_rows(&[&[a, 0.0], &[0.0, b]]).unwrap()
    }

    #[test]
    fn single_scaling_matrix_exponent_is_log_scale() {
        let mut rng = SimRng::new(1);
        let est = lyapunov_exponent(&[diag2(0.5, 0.5)], &[1.0], 2_000, 4, &mut rng);
        assert!(
            (est.exponent - 0.5f64.ln()).abs() < 1e-9,
            "{}",
            est.exponent
        );
        assert!(est.is_stable());
    }

    #[test]
    fn dominant_direction_wins_for_diagonal_matrix() {
        // diag(0.9, 0.3): the top exponent is ln 0.9 (slowest contraction).
        let mut rng = SimRng::new(2);
        let est = lyapunov_exponent(&[diag2(0.9, 0.3)], &[1.0], 3_000, 4, &mut rng);
        assert!(
            (est.exponent - 0.9f64.ln()).abs() < 0.01,
            "{}",
            est.exponent
        );
    }

    #[test]
    fn mixed_modes_average_in_log_scale() {
        // Scalars 2 and 1/8 with equal probability: λ = (ln2 + ln(1/8))/2 =
        // -ln 2 < 0 although mode 0 is expanding — a.s. stable, while the
        // norm certificate Σ p‖A‖ = (2 + 0.125)/2 > 1 fails.
        let m1 = Matrix::from_vec(1, 1, vec![2.0]).unwrap();
        let m2 = Matrix::from_vec(1, 1, vec![0.125]).unwrap();
        let mut rng = SimRng::new(3);
        let est = lyapunov_exponent(&[m1, m2], &[1.0, 1.0], 5_000, 8, &mut rng);
        assert!(
            (est.exponent + std::f64::consts::LN_2).abs() < 0.05,
            "{}",
            est.exponent
        );
        assert!(est.is_stable());
    }

    #[test]
    fn unstable_system_detected() {
        let mut rng = SimRng::new(4);
        let est = lyapunov_exponent(&[diag2(1.2, 1.1)], &[1.0], 2_000, 4, &mut rng);
        assert!(est.exponent > 0.0);
        assert!(!est.is_stable());
    }

    #[test]
    fn rotation_is_neutral() {
        let theta: f64 = 0.77;
        let (s, c) = theta.sin_cos();
        let rot = Matrix::from_rows(&[&[c, -s], &[s, c]]).unwrap();
        let mut rng = SimRng::new(5);
        let est = lyapunov_exponent(&[rot], &[1.0], 2_000, 4, &mut rng);
        assert!(est.exponent.abs() < 1e-6, "{}", est.exponent);
    }

    #[test]
    fn nilpotent_product_reports_very_negative() {
        let nil = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let mut rng = SimRng::new(6);
        let est = lyapunov_exponent(&[nil], &[1.0], 100, 2, &mut rng);
        assert!(est.exponent < -100.0);
    }

    #[test]
    fn zero_length_trajectory_is_inconclusive_not_a_panic() {
        // An empty simulation budget carries no stability information:
        // the estimate must come back finite-field, never certify, and
        // never NaN — the certification plane feeds degenerate budgets
        // through here when a trace is too short to fit a surrogate.
        let mut rng = SimRng::new(7);
        for (steps, replicas) in [(0, 4), (200, 0), (0, 0)] {
            let est = lyapunov_exponent(&[diag2(0.5, 0.5)], &[1.0], steps, replicas, &mut rng);
            assert_eq!(est.exponent, 0.0);
            assert_eq!(est.std_error, f64::INFINITY);
            assert_eq!((est.steps, est.replicas), (steps, replicas));
            assert!(!est.is_stable(), "no-data estimate must not certify");
            assert!(!est.exponent.is_nan() && !est.std_error.is_nan());
        }
    }

    #[test]
    #[should_panic(expected = "no matrices")]
    fn rejects_empty() {
        let mut rng = SimRng::new(0);
        lyapunov_exponent(&[], &[], 10, 1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "inconsistent matrix sizes")]
    fn rejects_mixed_sizes() {
        let mut rng = SimRng::new(0);
        lyapunov_exponent(
            &[Matrix::identity(2), Matrix::identity(3)],
            &[1.0, 1.0],
            10,
            1,
            &mut rng,
        );
    }
}
