//! Markov systems after Werner (2004), as defined in the paper's Appendix.
//!
//! A Markov system is a family `(X_{i(e)}, w_e, p_e)_{e ∈ E}` where `E` is
//! the edge set of a finite directed multigraph over vertices
//! `V = {0, ..., N-1}`, the cells `X_0, ..., X_{N-1}` partition the state
//! space, each edge `e: i(e) -> t(e)` carries a Borel map `w_e` with
//! `w_e(X_{i(e)}) ⊆ X_{t(e)}`, and place-dependent probabilities `p_e(x)`
//! with `Σ_{e out of i} p_e(x) = 1` for `x ∈ X_i`.

use eqimpact_graph::DiGraph;
use eqimpact_stats::SimRng;
use std::fmt;
use std::sync::Arc;

/// A state-transition map `w_e : R^n -> R^n`.
pub type TransitionMap = Arc<dyn Fn(&[f64]) -> Vec<f64> + Send + Sync>;

/// A place-dependent probability function `p_e : R^n -> [0, 1]`.
pub type ProbabilityFn = Arc<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// A vertex-membership test `x ∈ X_i`.
pub type CellFn = Arc<dyn Fn(&[f64]) -> bool + Send + Sync>;

/// Errors from Markov-system construction and validation.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovSystemError {
    /// The system has no edges.
    Empty,
    /// An edge references a vertex outside `0..vertex_count`.
    BadVertex {
        /// The offending vertex index.
        vertex: usize,
        /// Number of declared vertices.
        vertices: usize,
    },
    /// At a sampled point, the outgoing probabilities failed to sum to 1.
    ProbabilitiesNotNormalized {
        /// Vertex whose cell contained the point.
        vertex: usize,
        /// The measured sum.
        sum: f64,
    },
    /// A probability function returned a value outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Edge whose probability misbehaved.
        edge: usize,
        /// The offending value.
        value: f64,
    },
    /// A map sent a point of its source cell outside its target cell.
    CellViolation {
        /// Edge whose map misbehaved.
        edge: usize,
    },
    /// A sampled point belonged to no declared cell.
    PointInNoCell,
}

impl fmt::Display for MarkovSystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovSystemError::Empty => write!(f, "Markov system has no edges"),
            MarkovSystemError::BadVertex { vertex, vertices } => {
                write!(f, "edge references vertex {vertex} of {vertices}")
            }
            MarkovSystemError::ProbabilitiesNotNormalized { vertex, sum } => write!(
                f,
                "outgoing probabilities at a point of cell {vertex} sum to {sum}, not 1"
            ),
            MarkovSystemError::ProbabilityOutOfRange { edge, value } => {
                write!(f, "edge {edge} probability {value} outside [0,1]")
            }
            MarkovSystemError::CellViolation { edge } => {
                write!(
                    f,
                    "edge {edge} maps its source cell outside its target cell"
                )
            }
            MarkovSystemError::PointInNoCell => write!(f, "sampled point belongs to no cell"),
        }
    }
}

impl std::error::Error for MarkovSystemError {}

/// One edge of a Markov system.
#[derive(Clone)]
pub struct Edge {
    /// Initial vertex `i(e)`.
    pub from: usize,
    /// Terminal vertex `t(e)`.
    pub to: usize,
    /// The transition map `w_e`.
    pub map: TransitionMap,
    /// The place-dependent probability `p_e`.
    pub prob: ProbabilityFn,
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Edge")
            .field("from", &self.from)
            .field("to", &self.to)
            .finish_non_exhaustive()
    }
}

/// A Markov system `(X_{i(e)}, w_e, p_e)_{e ∈ E}`.
#[derive(Clone)]
pub struct MarkovSystem {
    dim: usize,
    vertex_count: usize,
    cells: Vec<CellFn>,
    edges: Vec<Edge>,
    /// `outgoing[v]` lists indices into `edges` with `from == v`.
    outgoing: Vec<Vec<usize>>,
}

impl fmt::Debug for MarkovSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MarkovSystem")
            .field("dim", &self.dim)
            .field("vertex_count", &self.vertex_count)
            .field("edge_count", &self.edges.len())
            .finish_non_exhaustive()
    }
}

/// Builder for [`MarkovSystem`].
pub struct MarkovSystemBuilder {
    dim: usize,
    cells: Vec<CellFn>,
    edges: Vec<Edge>,
}

impl MarkovSystemBuilder {
    /// Declares a vertex by its cell-membership predicate; returns its
    /// index. Cells are checked in declaration order when classifying a
    /// point, so overlapping predicates resolve to the first match.
    pub fn cell(mut self, member: impl Fn(&[f64]) -> bool + Send + Sync + 'static) -> Self {
        self.cells.push(Arc::new(member));
        self
    }

    /// Adds an edge `from -> to` with map `w` and probability `p`.
    pub fn edge(
        mut self,
        from: usize,
        to: usize,
        w: impl Fn(&[f64]) -> Vec<f64> + Send + Sync + 'static,
        p: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.edges.push(Edge {
            from,
            to,
            map: Arc::new(w),
            prob: Arc::new(p),
        });
        self
    }

    /// Finalizes the system, checking structural consistency.
    pub fn build(self) -> Result<MarkovSystem, MarkovSystemError> {
        if self.edges.is_empty() {
            return Err(MarkovSystemError::Empty);
        }
        let vertex_count = self.cells.len().max(1);
        let mut outgoing = vec![Vec::new(); vertex_count];
        for (i, e) in self.edges.iter().enumerate() {
            if e.from >= vertex_count {
                return Err(MarkovSystemError::BadVertex {
                    vertex: e.from,
                    vertices: vertex_count,
                });
            }
            if e.to >= vertex_count {
                return Err(MarkovSystemError::BadVertex {
                    vertex: e.to,
                    vertices: vertex_count,
                });
            }
            outgoing[e.from].push(i);
        }
        let cells = if self.cells.is_empty() {
            // Single-vertex system: the whole space is one cell.
            vec![Arc::new(|_: &[f64]| true) as CellFn]
        } else {
            self.cells
        };
        Ok(MarkovSystem {
            dim: self.dim,
            vertex_count,
            cells,
            edges: self.edges,
            outgoing,
        })
    }
}

impl MarkovSystem {
    /// Starts building a system over `R^dim`.
    pub fn builder(dim: usize) -> MarkovSystemBuilder {
        MarkovSystemBuilder {
            dim,
            cells: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// State-space dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vertices (partition cells).
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of edges (maps).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edges of the system.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The vertex whose cell contains `x`, or an error if none does.
    pub fn classify(&self, x: &[f64]) -> Result<usize, MarkovSystemError> {
        self.cells
            .iter()
            .position(|c| c(x))
            .ok_or(MarkovSystemError::PointInNoCell)
    }

    /// The directed multigraph underlying the system.
    pub fn graph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.vertex_count);
        for e in &self.edges {
            g.add_edge(e.from, e.to);
        }
        g
    }

    /// Outgoing edge indices from vertex `v`.
    pub fn outgoing(&self, v: usize) -> &[usize] {
        &self.outgoing[v]
    }

    /// Evaluates the outgoing probability vector at `x` (edges in
    /// [`Self::outgoing`] order for the cell of `x`).
    pub fn probabilities_at(&self, x: &[f64]) -> Result<Vec<f64>, MarkovSystemError> {
        let v = self.classify(x)?;
        let mut probs = Vec::with_capacity(self.outgoing[v].len());
        for &ei in &self.outgoing[v] {
            let p = (self.edges[ei].prob)(x);
            if !(0.0..=1.0 + 1e-9).contains(&p) || p.is_nan() {
                return Err(MarkovSystemError::ProbabilityOutOfRange { edge: ei, value: p });
            }
            probs.push(p.clamp(0.0, 1.0));
        }
        Ok(probs)
    }

    /// Validates normalization and cell compatibility on a set of sample
    /// points (one validation sweep per point).
    pub fn validate_at(&self, points: &[Vec<f64>]) -> Result<(), MarkovSystemError> {
        for x in points {
            let v = self.classify(x)?;
            let probs = self.probabilities_at(x)?;
            let sum: f64 = probs.iter().sum();
            if (sum - 1.0).abs() > 1e-6 {
                return Err(MarkovSystemError::ProbabilitiesNotNormalized { vertex: v, sum });
            }
            for (&ei, &p) in self.outgoing[v].iter().zip(&probs) {
                if p > 0.0 {
                    let image = (self.edges[ei].map)(x);
                    let target = self.classify(&image)?;
                    if target != self.edges[ei].to {
                        return Err(MarkovSystemError::CellViolation { edge: ei });
                    }
                }
            }
        }
        Ok(())
    }

    /// Performs one random step from `x`, returning `(edge_index, next)`.
    ///
    /// # Panics
    /// Panics if `x` lies in no cell or its outgoing probabilities are
    /// degenerate (use [`Self::validate_at`] first on untrusted systems).
    pub fn step(&self, x: &[f64], rng: &mut SimRng) -> (usize, Vec<f64>) {
        let v = self.classify(x).expect("point in no cell");
        let probs = self.probabilities_at(x).expect("bad probabilities");
        assert!(
            !self.outgoing[v].is_empty(),
            "vertex {v} has no outgoing edges"
        );
        let choice = rng.weighted_index(&probs);
        let ei = self.outgoing[v][choice];
        (ei, (self.edges[ei].map)(x))
    }

    /// Simulates `steps` steps from `x0`, returning the state sequence
    /// including the initial state (`steps + 1` entries).
    pub fn trajectory(&self, x0: &[f64], steps: usize, rng: &mut SimRng) -> Vec<Vec<f64>> {
        let mut out = Vec::with_capacity(steps + 1);
        out.push(x0.to_vec());
        let mut x = x0.to_vec();
        for _ in 0..steps {
            let (_, next) = self.step(&x, rng);
            out.push(next.clone());
            x = next;
        }
        out
    }

    /// Simulates a trajectory and reports, for each step, the observable
    /// `f(x_k)` — the generic form of the paper's output maps `w'_{iℓ}`.
    pub fn observable_trajectory(
        &self,
        x0: &[f64],
        steps: usize,
        rng: &mut SimRng,
        f: impl Fn(&[f64]) -> f64,
    ) -> Vec<f64> {
        self.trajectory(x0, steps, rng)
            .iter()
            .map(|x| f(x))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-cell system on R: cell 0 = x < 0.5, cell 1 = x >= 0.5, with maps
    /// hopping between the cells.
    fn two_cell_system() -> MarkovSystem {
        MarkovSystem::builder(1)
            .cell(|x| x[0] < 0.5)
            .cell(|x| x[0] >= 0.5)
            .edge(0, 1, |x| vec![0.5 + 0.5 * x[0]], |_| 1.0)
            .edge(1, 0, |x| vec![0.5 * (x[0] - 0.5)], |_| 0.7)
            .edge(1, 1, |x| vec![0.5 + 0.25 * (x[0] - 0.5)], |_| 0.3)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_constructs_valid_system() {
        let ms = two_cell_system();
        assert_eq!(ms.vertex_count(), 2);
        assert_eq!(ms.edge_count(), 3);
        assert_eq!(ms.dim(), 1);
        assert_eq!(ms.classify(&[0.2]).unwrap(), 0);
        assert_eq!(ms.classify(&[0.9]).unwrap(), 1);
        assert_eq!(ms.outgoing(0), &[0]);
        assert_eq!(ms.outgoing(1), &[1, 2]);
    }

    #[test]
    fn empty_system_rejected() {
        assert_eq!(
            MarkovSystem::builder(1).build().unwrap_err(),
            MarkovSystemError::Empty
        );
    }

    #[test]
    fn bad_vertex_rejected() {
        let err = MarkovSystem::builder(1)
            .cell(|_| true)
            .edge(0, 5, |x| x.to_vec(), |_| 1.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            MarkovSystemError::BadVertex { vertex: 5, .. }
        ));
    }

    #[test]
    fn validation_passes_for_consistent_system() {
        let ms = two_cell_system();
        let pts = vec![vec![0.0], vec![0.3], vec![0.5], vec![0.8], vec![1.0]];
        ms.validate_at(&pts).unwrap();
    }

    #[test]
    fn validation_detects_unnormalized_probabilities() {
        let ms = MarkovSystem::builder(1)
            .cell(|_| true)
            .edge(0, 0, |x| x.to_vec(), |_| 0.4)
            .edge(0, 0, |x| x.to_vec(), |_| 0.4)
            .build()
            .unwrap();
        let err = ms.validate_at(&[vec![0.0]]).unwrap_err();
        assert!(matches!(
            err,
            MarkovSystemError::ProbabilitiesNotNormalized { .. }
        ));
    }

    #[test]
    fn validation_detects_cell_violation() {
        // Map from cell 0 claims to land in cell 1 but stays in cell 0.
        let ms = MarkovSystem::builder(1)
            .cell(|x| x[0] < 0.5)
            .cell(|x| x[0] >= 0.5)
            .edge(0, 1, |x| vec![x[0] * 0.5], |_| 1.0)
            .edge(1, 0, |_| vec![0.0], |_| 1.0)
            .build()
            .unwrap();
        let err = ms.validate_at(&[vec![0.1]]).unwrap_err();
        assert_eq!(err, MarkovSystemError::CellViolation { edge: 0 });
    }

    #[test]
    fn validation_detects_out_of_range_probability() {
        let ms = MarkovSystem::builder(1)
            .cell(|_| true)
            .edge(0, 0, |x| x.to_vec(), |_| 1.5)
            .build()
            .unwrap();
        let err = ms.validate_at(&[vec![0.0]]).unwrap_err();
        assert!(matches!(
            err,
            MarkovSystemError::ProbabilityOutOfRange { .. }
        ));
    }

    #[test]
    fn classify_fails_outside_all_cells() {
        let ms = MarkovSystem::builder(1)
            .cell(|x| x[0] >= 0.0)
            .edge(0, 0, |x| x.to_vec(), |_| 1.0)
            .build()
            .unwrap();
        assert_eq!(
            ms.classify(&[-1.0]).unwrap_err(),
            MarkovSystemError::PointInNoCell
        );
    }

    #[test]
    fn trajectory_respects_cell_structure() {
        let ms = two_cell_system();
        let mut rng = SimRng::new(5);
        let traj = ms.trajectory(&[0.2], 200, &mut rng);
        assert_eq!(traj.len(), 201);
        // Every consecutive pair must follow an existing edge direction.
        for w in traj.windows(2) {
            let a = ms.classify(&w[0]).unwrap();
            let b = ms.classify(&w[1]).unwrap();
            assert!(
                ms.edges().iter().any(|e| e.from == a && e.to == b),
                "transition {a} -> {b} has no edge"
            );
        }
    }

    #[test]
    fn observable_trajectory_applies_function() {
        let ms = two_cell_system();
        let mut rng = SimRng::new(6);
        let obs = ms.observable_trajectory(&[0.2], 50, &mut rng, |x| x[0] * 2.0);
        assert_eq!(obs.len(), 51);
        assert!((obs[0] - 0.4).abs() < 1e-15);
    }

    #[test]
    fn graph_reflects_edges() {
        let ms = two_cell_system();
        let g = ms.graph();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 3);
        assert!(g.is_strongly_connected());
        // Self-loop on vertex 1 makes it aperiodic → primitive.
        assert!(g.is_primitive());
    }

    #[test]
    fn display_of_errors() {
        let e = MarkovSystemError::ProbabilitiesNotNormalized {
            vertex: 1,
            sum: 0.8,
        };
        assert!(e.to_string().contains("0.8"));
        assert!(MarkovSystemError::Empty.to_string().contains("no edges"));
    }
}
