//! Numerical verification of the average contractivity condition.
//!
//! A Markov system is *contractive with factor `a`* when for all `x, y` in
//! the same cell
//!
//! ```text
//! Σ_e p_e(x) d(w_e(x), w_e(y)) ≤ a · d(x, y)
//! ```
//!
//! (paper Appendix, after Werner 2004). Contractivity with `a < 1` plus an
//! irreducible, aperiodic graph yields a unique attractive invariant
//! measure. The condition cannot be verified symbolically for black-box
//! maps, so we estimate the worst-case ratio over sampled pairs of points.

use crate::system::MarkovSystem;
use eqimpact_linalg::norm::MetricKind;
use eqimpact_stats::SimRng;

/// Result of a contractivity estimation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ContractivityReport {
    /// Estimated contraction factor: the max over sampled same-cell pairs
    /// of `Σ_e p_e(x) d(w_e(x), w_e(y)) / d(x, y)`.
    pub estimated_factor: f64,
    /// Number of pairs actually evaluated (same-cell pairs only).
    pub pairs_evaluated: usize,
    /// Pair achieving the maximum, if any pair was evaluated.
    pub worst_pair: Option<(Vec<f64>, Vec<f64>)>,
}

impl ContractivityReport {
    /// Whether the sweep is consistent with average contractivity
    /// (`estimated factor < 1`, allowing a small numerical margin).
    pub fn is_contractive(&self) -> bool {
        self.pairs_evaluated > 0 && self.estimated_factor < 1.0 - 1e-9
    }
}

/// Estimates the average-contraction factor of `ms` over `n_pairs` random
/// pairs drawn from `sampler` (which should produce points covering the
/// relevant part of the state space). Pairs falling in different cells are
/// skipped, since the condition is per-cell.
pub fn estimate_contraction_factor(
    ms: &MarkovSystem,
    metric: MetricKind,
    n_pairs: usize,
    rng: &mut SimRng,
    mut sampler: impl FnMut(&mut SimRng) -> Vec<f64>,
) -> ContractivityReport {
    let mut worst = 0.0f64;
    let mut worst_pair = None;
    let mut evaluated = 0usize;

    for _ in 0..n_pairs {
        let x = sampler(rng);
        let y = sampler(rng);
        let (vx, vy) = match (ms.classify(&x), ms.classify(&y)) {
            (Ok(a), Ok(b)) => (a, b),
            _ => continue,
        };
        if vx != vy {
            continue;
        }
        let dxy = metric.distance(&x, &y);
        if dxy <= 1e-12 {
            continue;
        }
        let probs = match ms.probabilities_at(&x) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let mut lhs = 0.0;
        for (&ei, &p) in ms.outgoing(vx).iter().zip(&probs) {
            if p > 0.0 {
                let wx = (ms.edges()[ei].map)(&x);
                let wy = (ms.edges()[ei].map)(&y);
                lhs += p * metric.distance(&wx, &wy);
            }
        }
        let ratio = lhs / dxy;
        evaluated += 1;
        if ratio > worst {
            worst = ratio;
            worst_pair = Some((x, y));
        }
    }

    ContractivityReport {
        estimated_factor: worst,
        pairs_evaluated: evaluated,
        worst_pair,
    }
}

/// Convenience sampler: uniform over an axis-aligned box.
///
/// # Panics
/// Panics when `lo` and `hi` have different lengths or any `lo[i] >= hi[i]`.
pub fn box_sampler(lo: Vec<f64>, hi: Vec<f64>) -> impl FnMut(&mut SimRng) -> Vec<f64> {
    assert_eq!(lo.len(), hi.len(), "box_sampler: bounds length mismatch");
    for (l, h) in lo.iter().zip(&hi) {
        assert!(l < h, "box_sampler: empty box side [{l}, {h})");
    }
    move |rng: &mut SimRng| {
        lo.iter()
            .zip(&hi)
            .map(|(&l, &h)| rng.uniform_in(l, h))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ifs::{affine1d, Ifs};

    fn system_with_slopes(a1: f64, a2: f64) -> MarkovSystem {
        Ifs::builder(1)
            .map_const(affine1d(a1, 0.0), 0.5)
            .map_const(affine1d(a2, 0.5), 0.5)
            .build()
            .unwrap()
            .as_markov_system()
            .clone()
    }

    #[test]
    fn contractive_ifs_detected() {
        let ms = system_with_slopes(0.5, 0.5);
        let mut rng = SimRng::new(1);
        let report = estimate_contraction_factor(
            &ms,
            MetricKind::Euclidean,
            500,
            &mut rng,
            box_sampler(vec![0.0], vec![1.0]),
        );
        assert!(report.pairs_evaluated > 400);
        assert!((report.estimated_factor - 0.5).abs() < 1e-9);
        assert!(report.is_contractive());
        assert!(report.worst_pair.is_some());
    }

    #[test]
    fn average_contractivity_despite_one_expanding_map() {
        // Slopes 1.4 and 0.2 with equal probability: average 0.8 < 1.
        let ms = system_with_slopes(1.4, 0.2);
        let mut rng = SimRng::new(2);
        let report = estimate_contraction_factor(
            &ms,
            MetricKind::Euclidean,
            500,
            &mut rng,
            box_sampler(vec![0.0], vec![1.0]),
        );
        assert!((report.estimated_factor - 0.8).abs() < 1e-9);
        assert!(report.is_contractive());
    }

    #[test]
    fn expanding_system_detected() {
        let ms = system_with_slopes(1.5, 1.5);
        let mut rng = SimRng::new(3);
        let report = estimate_contraction_factor(
            &ms,
            MetricKind::Euclidean,
            300,
            &mut rng,
            box_sampler(vec![0.0], vec![1.0]),
        );
        assert!(report.estimated_factor > 1.0);
        assert!(!report.is_contractive());
    }

    #[test]
    fn isometry_is_borderline() {
        let ms = system_with_slopes(1.0, 1.0);
        let mut rng = SimRng::new(4);
        let report = estimate_contraction_factor(
            &ms,
            MetricKind::Euclidean,
            300,
            &mut rng,
            box_sampler(vec![0.0], vec![1.0]),
        );
        assert!((report.estimated_factor - 1.0).abs() < 1e-9);
        assert!(!report.is_contractive());
    }

    #[test]
    fn no_pairs_means_not_contractive() {
        let ms = system_with_slopes(0.5, 0.5);
        let mut rng = SimRng::new(5);
        // Sampler producing coincident points only: every pair is skipped.
        let report =
            estimate_contraction_factor(&ms, MetricKind::Euclidean, 100, &mut rng, |_| vec![0.5]);
        assert_eq!(report.pairs_evaluated, 0);
        assert!(!report.is_contractive());
    }

    #[test]
    fn cross_cell_pairs_skipped() {
        // Two-cell system; sample over the whole line so ~half of pairs
        // straddle the cells and are skipped.
        let ms = MarkovSystem::builder(1)
            .cell(|x| x[0] < 0.0)
            .cell(|x| x[0] >= 0.0)
            .edge(0, 1, |x| vec![-0.5 * x[0]], |_| 1.0)
            .edge(1, 0, |x| vec![-0.5 * x[0] - 0.1], |_| 1.0)
            .build()
            .unwrap();
        let mut rng = SimRng::new(6);
        let report = estimate_contraction_factor(
            &ms,
            MetricKind::Euclidean,
            400,
            &mut rng,
            box_sampler(vec![-1.0], vec![1.0]),
        );
        assert!(report.pairs_evaluated < 400);
        assert!(report.pairs_evaluated > 100);
        assert!(report.is_contractive());
    }

    #[test]
    fn identity_map_is_exactly_neutral_with_no_nan() {
        // The pure identity system — the surrogate the certification
        // plane fits when a model's weights never move — must report a
        // factor of exactly one from every evaluated pair: not
        // contractive, not expanding, and with finite evidence numbers.
        let ms = Ifs::builder(2)
            .map_const(|x: &[f64]| x.to_vec(), 1.0)
            .build()
            .unwrap()
            .as_markov_system()
            .clone();
        let mut rng = SimRng::new(7);
        let report = estimate_contraction_factor(
            &ms,
            MetricKind::Euclidean,
            300,
            &mut rng,
            box_sampler(vec![-1.0, -1.0], vec![1.0, 1.0]),
        );
        assert!(report.pairs_evaluated > 0);
        assert!((report.estimated_factor - 1.0).abs() < 1e-12);
        assert!(!report.estimated_factor.is_nan());
        assert!(!report.is_contractive());
        let (a, b) = report.worst_pair.expect("evaluated pairs record a worst");
        assert!(a.iter().chain(&b).all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "empty box side")]
    fn box_sampler_rejects_empty_box() {
        let _sampler = box_sampler(vec![1.0], vec![1.0]);
    }
}
