//! The ranked sweep report: per-candidate fairness gaps and impact
//! deltas with bootstrap confidence intervals, as JSON (machine
//! consumers, CI artifacts) and as a text table (the CLI).

use crate::grid::CandidateSpec;
use eqimpact_stats::{ConfidenceInterval, Json, ToJson};
use std::fmt::Write as _;

/// One candidate's aggregated read-out across every swept trace.
#[derive(Debug, Clone)]
pub struct RankedCandidate {
    /// The evaluated grid point.
    pub candidate: CandidateSpec,
    /// Traces evaluated successfully (cells that errored are excluded
    /// from every statistic and listed in [`Self::errors`]).
    pub traces: usize,
    /// Mean decision-agreement rate with the logged policy — the
    /// off-policy validity measure (low agreement = the counterfactual
    /// left the support of the log).
    pub agreement: f64,
    /// Bootstrap CI of the demographic-parity gap (max − min group mean
    /// of per-user positive-decision shares).
    pub parity_gap: ConfidenceInterval,
    /// Bootstrap CI of the equal-opportunity gap (among
    /// favourable-action steps).
    pub opportunity_gap: ConfidenceInterval,
    /// Bootstrap CI of the mean per-user final-filter-output delta,
    /// candidate − recorded behaviour (the impact channel).
    pub outcome_delta: ConfidenceInterval,
    /// Per-cell failures (trace label + cause), empty when every trace
    /// evaluated.
    pub errors: Vec<String>,
}

/// The full sweep result, ranked most demographically even first.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The swept scenario.
    pub scenario: String,
    /// Base bootstrap seed.
    pub seed: u64,
    /// Bootstrap resamples per interval.
    pub resamples: usize,
    /// Nominal CI coverage level.
    pub level: f64,
    /// Labels of the traces swept over, in cell order.
    pub traces: Vec<String>,
    /// Candidates enumerated from the grid.
    pub candidates: usize,
    /// Every candidate, ranked (parity gap, then opportunity gap, then
    /// candidate key).
    pub ranked: Vec<RankedCandidate>,
}

fn ci_json(ci: &ConfidenceInterval) -> Json {
    Json::obj([
        ("lo", ci.lo.to_json()),
        ("estimate", ci.estimate.to_json()),
        ("hi", ci.hi.to_json()),
        ("level", ci.level.to_json()),
    ])
}

impl ToJson for RankedCandidate {
    fn to_json(&self) -> Json {
        Json::obj([
            ("policy", self.candidate.policy.as_str().to_json()),
            ("filter", self.candidate.filter.as_str().to_json()),
            ("threshold", self.candidate.threshold.to_json()),
            ("grid_index", self.candidate.index.to_json()),
            ("key", self.candidate.key().as_str().to_json()),
            ("traces", self.traces.to_json()),
            ("agreement", self.agreement.to_json()),
            ("parity_gap", ci_json(&self.parity_gap)),
            ("opportunity_gap", ci_json(&self.opportunity_gap)),
            ("outcome_delta", ci_json(&self.outcome_delta)),
            (
                "errors",
                Json::Arr(self.errors.iter().map(|e| e.as_str().to_json()).collect()),
            ),
        ])
    }
}

impl ToJson for SweepReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", self.scenario.as_str().to_json()),
            ("seed", self.seed.to_string().as_str().to_json()),
            ("resamples", self.resamples.to_json()),
            ("level", self.level.to_json()),
            (
                "traces",
                Json::Arr(self.traces.iter().map(|t| t.as_str().to_json()).collect()),
            ),
            ("candidates", self.candidates.to_json()),
            (
                "ranked",
                Json::Arr(self.ranked.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }
}

fn fmt_ci(ci: &ConfidenceInterval) -> String {
    if ci.estimate.is_nan() {
        "undefined".to_string()
    } else {
        format!("{:.4} [{:.4}, {:.4}]", ci.estimate, ci.lo, ci.hi)
    }
}

impl SweepReport {
    /// Renders the ranked table the CLI prints (and writes next to the
    /// JSON artifact).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep {}: {} candidates x {} traces, seed {}, {}% CIs ({} resamples)",
            self.scenario,
            self.candidates,
            self.traces.len(),
            self.seed,
            self.level * 100.0,
            self.resamples
        );
        let _ = writeln!(
            out,
            "{:<4} {:<38} {:>7} {:>28} {:>28} {:>28}",
            "rank", "candidate", "agree", "parity gap", "opportunity gap", "outcome delta"
        );
        for (rank, r) in self.ranked.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<4} {:<38} {:>7.4} {:>28} {:>28} {:>28}",
                rank + 1,
                r.candidate.key(),
                r.agreement,
                fmt_ci(&r.parity_gap),
                fmt_ci(&r.opportunity_gap),
                fmt_ci(&r.outcome_delta),
            );
            for error in &r.errors {
                let _ = writeln!(out, "     ! {error}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci(estimate: f64) -> ConfidenceInterval {
        ConfidenceInterval {
            lo: estimate - 0.01,
            estimate,
            hi: estimate + 0.01,
            level: 0.95,
        }
    }

    fn report() -> SweepReport {
        SweepReport {
            scenario: "credit".to_string(),
            seed: 42,
            resamples: 200,
            level: 0.95,
            traces: vec!["credit-scorecard-trial0.eqtrace".to_string()],
            candidates: 1,
            ranked: vec![RankedCandidate {
                candidate: CandidateSpec {
                    index: 0,
                    policy: "scorecard".to_string(),
                    filter: "adr".to_string(),
                    threshold: 0.0,
                },
                traces: 1,
                agreement: 0.97,
                parity_gap: ci(0.12),
                opportunity_gap: ci(0.08),
                outcome_delta: ci(-0.02),
                errors: vec!["bad.eqtrace: truncated".to_string()],
            }],
        }
    }

    #[test]
    fn json_report_carries_every_interval() {
        let rendered = report().to_json().render_pretty();
        for key in [
            "\"scenario\"",
            "\"parity_gap\"",
            "\"opportunity_gap\"",
            "\"outcome_delta\"",
            "\"estimate\"",
            "\"errors\"",
            "\"agreement\"",
        ] {
            assert!(rendered.contains(key), "missing {key} in {rendered}");
        }
    }

    #[test]
    fn text_report_lists_rank_key_and_errors() {
        let text = report().render_text();
        assert!(text.contains("scorecard/adr/thr=0"));
        assert!(text.contains("parity gap"));
        assert!(text.contains("! bad.eqtrace: truncated"));
        assert!(text.starts_with("sweep credit: 1 candidates"));
    }

    #[test]
    fn undefined_intervals_render_as_text_not_nan_soup() {
        let mut r = report();
        r.ranked[0].parity_gap = ConfidenceInterval {
            lo: f64::NAN,
            estimate: f64::NAN,
            hi: f64::NAN,
            level: 0.95,
        };
        assert!(r.render_text().contains("undefined"));
    }
}
