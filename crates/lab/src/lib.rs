//! The counterfactual lab: fleet-scale off-policy **sweeps** over
//! recorded traces.
//!
//! A single `experiments replay --policy X` answers one counterfactual.
//! This crate asks them in bulk: a [`CandidateGrid`] enumerates
//! (policy, filter, threshold) combinations, [`run_sweep`] fans every
//! candidate across every recorded trace on the process-wide
//! [`ThreadBudget`](eqimpact_core::pool::ThreadBudget) (one lease, one
//! [`WorkerPool`](eqimpact_core::pool::WorkerPool) batch, per-cell panic
//! isolation), and the result is a [`SweepReport`]: candidates ranked by
//! demographic-parity gap, every gap and impact delta carrying a
//! bootstrap confidence interval.
//!
//! # Determinism contract
//!
//! The same traces, grid and [`SweepConfig`] produce a bit-identical
//! report regardless of thread count or scheduling: cells write disjoint
//! result slots, aggregation is sequential in grid order, and candidate
//! `i`'s bootstrap RNG is derived from `(seed, i)` alone.
//!
//! # The checkpoint fast-path
//!
//! Traces recorded with model checkpoints (format v2,
//! [`TraceHeader::with_checkpoints`](eqimpact_trace::TraceHeader::with_checkpoints))
//! let a candidate that shares the logged learner skip retraining
//! entirely; [`SweepTarget`] implementations enable it exactly when the
//! candidate's policy equals the recorded variant, so the fast-path is
//! sound by construction and every other candidate retrains as usual.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod report;
pub mod sweep;

pub use grid::{CandidateGrid, CandidateSpec, GridError};
pub use report::{RankedCandidate, SweepReport};
pub use sweep::{
    run_sweep, FileTrace, MemTrace, SweepConfig, SweepError, SweepEval, SweepTarget, TraceSource,
};
