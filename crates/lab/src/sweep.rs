//! The sweep engine: fan a [`CandidateGrid`] across recorded traces on
//! the process-wide thread budget and aggregate per-candidate fairness
//! statistics with bootstrap confidence intervals.
//!
//! A sweep's unit of work is a **cell** — one candidate evaluated
//! off-policy against one trace. Cells are independent, so all of them
//! go into a single [`WorkerPool`] batch under one [`ThreadBudget`]
//! lease; each cell streams its trace from its own reader (traces are
//! never materialized in memory by the engine) and reduces the two
//! [`LoopRecord`](eqimpact_core::LoopRecord)s to compact per-user
//! statistics before the records are dropped. A panicking cell is
//! caught inside the job and reported as that cell's error — one corrupt
//! trace or misbehaving candidate never takes down the sweep.
//!
//! Aggregation is sequential and index-ordered, with every candidate's
//! bootstrap RNG derived from `(config.seed, candidate.index)` — so the
//! ranked report is bit-identical across runs and across thread counts.

use crate::grid::{CandidateGrid, CandidateSpec};
use crate::report::{RankedCandidate, SweepReport};
use eqimpact_core::pool::{PoolJob, ThreadBudget, WorkerPool};
use eqimpact_stats::{bootstrap_mean_ci, bootstrap_stratified_ci, ConfidenceInterval, SimRng};
use eqimpact_telemetry::metrics as tm;
use eqimpact_trace::{OffPolicyOutcome, TraceError, TraceHeader};
use std::collections::BTreeMap;
use std::fmt;
use std::io::Read;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// What a workload hands back for one (trace, candidate) cell.
pub struct SweepEval {
    /// The trace's provenance header.
    pub header: TraceHeader,
    /// The off-policy evaluation of the candidate against the trace.
    pub outcome: OffPolicyOutcome,
}

/// The sweep face a workload exposes: how to build and evaluate the
/// candidates its grid names. Implemented by the traceable scenarios
/// (credit, hiring) and registered next to their
/// [`TraceReplayer`](eqimpact_trace::TraceReplayer)s.
pub trait SweepTarget: Sync {
    /// The scenario name (matches the scenario registry and trace
    /// headers).
    fn name(&self) -> &'static str;

    /// The grid swept when the CLI gets no `--grid` spec.
    fn default_grid(&self) -> CandidateGrid;

    /// Every policy name the workload can instantiate.
    fn known_policies(&self) -> &'static [&'static str];

    /// Every filter name the workload can instantiate.
    fn known_filters(&self) -> &'static [&'static str];

    /// Evaluates one candidate against one trace stream. Implementations
    /// should enable the checkpointed fast-path only when it is sound:
    /// the trace carries checkpoints **and** the candidate's policy is
    /// the recorded variant (same learner, so restored weights are the
    /// weights retraining would have produced).
    fn evaluate(
        &self,
        input: &mut dyn Read,
        candidate: &CandidateSpec,
    ) -> Result<SweepEval, TraceError>;
}

/// A source of trace bytes a sweep can re-open once per cell. File-backed
/// in the CLI ([`FileTrace`]); in-memory in tests and benches
/// ([`MemTrace`]).
pub trait TraceSource: Sync {
    /// Display name (the ranked report's provenance listing).
    fn label(&self) -> &str;

    /// Opens a fresh reader over the trace bytes.
    fn open(&self) -> std::io::Result<Box<dyn Read + '_>>;
}

/// A trace on disk.
pub struct FileTrace {
    path: PathBuf,
    label: String,
}

impl FileTrace {
    /// Wraps a trace file path.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let label = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        FileTrace { path, label }
    }
}

impl TraceSource for FileTrace {
    fn label(&self) -> &str {
        &self.label
    }

    fn open(&self) -> std::io::Result<Box<dyn Read + '_>> {
        Ok(Box::new(std::io::BufReader::new(std::fs::File::open(
            &self.path,
        )?)))
    }
}

/// A trace held in memory.
pub struct MemTrace {
    name: String,
    bytes: Vec<u8>,
}

impl MemTrace {
    /// Wraps recorded trace bytes under a display name.
    pub fn new(name: impl Into<String>, bytes: Vec<u8>) -> Self {
        MemTrace {
            name: name.into(),
            bytes,
        }
    }
}

impl TraceSource for MemTrace {
    fn label(&self) -> &str {
        &self.name
    }

    fn open(&self) -> std::io::Result<Box<dyn Read + '_>> {
        Ok(Box::new(self.bytes.as_slice()))
    }
}

/// Knobs of [`run_sweep`].
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Base seed of the per-candidate bootstrap RNGs.
    pub seed: u64,
    /// Bootstrap resamples per confidence interval.
    pub resamples: usize,
    /// Nominal CI coverage level in `(0, 1)`.
    pub level: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 42,
            resamples: 200,
            level: 0.95,
        }
    }
}

/// A sweep that cannot start (per-cell failures are reported in the
/// ranked candidates instead, so one bad trace never aborts the rest).
#[derive(Debug)]
pub enum SweepError {
    /// The grid has an empty axis.
    EmptyGrid,
    /// No traces were supplied.
    NoTraces,
    /// A grid axis names a value the target cannot instantiate.
    UnknownAxisValue {
        /// The offending axis (`policy` or `filter`).
        axis: &'static str,
        /// The unrecognized value.
        value: String,
        /// Every value the target knows.
        known: Vec<&'static str>,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::EmptyGrid => write!(f, "the candidate grid has an empty axis"),
            SweepError::NoTraces => write!(f, "no traces to sweep over"),
            SweepError::UnknownAxisValue { axis, value, known } => write!(
                f,
                "unknown {axis} `{value}` (known values: {})",
                known.join(", ")
            ),
        }
    }
}

impl std::error::Error for SweepError {}

/// The per-cell reduction: everything aggregation needs, with the two
/// full [`LoopRecord`](eqimpact_core::LoopRecord)s already dropped.
struct CellStats {
    /// Decision-agreement rate with the logged policy.
    agreement: f64,
    /// Per group label: per-user positive-decision shares of the
    /// candidate (the demographic-parity strata).
    parity: BTreeMap<String, Vec<f64>>,
    /// Per group label: per-user positive shares among favourable-action
    /// steps (the equal-opportunity strata; users with no favourable
    /// step contribute nothing).
    opportunity: BTreeMap<String, Vec<f64>>,
    /// Per-user final-filter-output delta, candidate − baseline (the
    /// impact channel, e.g. ADR shift).
    outcome_delta: Vec<f64>,
}

/// Favourable-action cutoff of the equal-opportunity strata — the same
/// convention as `eqimpact_core::fairness::equal_opportunity` is called
/// with throughout the workspace (binary outcomes encoded as 0/1).
const FAVOURABLE_ACTION: f64 = 0.5;

fn cell_stats(eval: &SweepEval, threshold: f64) -> CellStats {
    let outcome = &eval.outcome;
    let steps = outcome.counterfactual.steps();
    let (labels, groups) = match &outcome.groups {
        Some(g) => (g.labels.clone(), g.index_sets()),
        None => (Vec::new(), Vec::new()),
    };
    let mut parity = BTreeMap::new();
    let mut opportunity = BTreeMap::new();
    for (label, members) in labels.iter().zip(&groups) {
        let mut parity_shares = Vec::with_capacity(members.len());
        let mut opportunity_shares = Vec::new();
        for &i in members {
            let mut positive = 0usize;
            let mut favourable = 0usize;
            let mut favourable_positive = 0usize;
            for k in 0..steps {
                let decided = outcome.counterfactual.signals(k)[i] > threshold;
                if decided {
                    positive += 1;
                }
                if outcome.counterfactual.actions(k)[i] > FAVOURABLE_ACTION {
                    favourable += 1;
                    if decided {
                        favourable_positive += 1;
                    }
                }
            }
            if steps > 0 {
                parity_shares.push(positive as f64 / steps as f64);
            }
            if favourable > 0 {
                opportunity_shares.push(favourable_positive as f64 / favourable as f64);
            }
        }
        parity
            .entry(label.clone())
            .or_insert_with(Vec::new)
            .extend(parity_shares);
        opportunity
            .entry(label.clone())
            .or_insert_with(Vec::new)
            .extend(opportunity_shares);
    }
    let outcome_delta = if steps > 0 {
        let candidate = outcome.counterfactual.filtered(steps - 1);
        let baseline = outcome.baseline.filtered(steps - 1);
        candidate.iter().zip(baseline).map(|(c, b)| c - b).collect()
    } else {
        Vec::new()
    };
    CellStats {
        agreement: outcome.agreement,
        parity,
        opportunity,
        outcome_delta,
    }
}

fn evaluate_cell(
    target: &dyn SweepTarget,
    trace: &dyn TraceSource,
    candidate: &CandidateSpec,
) -> Result<CellStats, TraceError> {
    let mut input = trace.open().map_err(TraceError::Io)?;
    let eval = target.evaluate(&mut input, candidate)?;
    Ok(cell_stats(&eval, candidate.threshold))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A NaN interval at `level`: the statistic had no samples (e.g. a trace
/// without group metadata), which the report renders as "undefined"
/// rather than inventing a number.
fn nan_ci(level: f64) -> ConfidenceInterval {
    ConfidenceInterval {
        lo: f64::NAN,
        estimate: f64::NAN,
        hi: f64::NAN,
        level,
    }
}

/// Bootstrap CI of the max-minus-min group-mean gap over pooled strata.
fn gap_ci(
    strata: &BTreeMap<String, Vec<f64>>,
    config: &SweepConfig,
    rng: &mut SimRng,
) -> ConfidenceInterval {
    let views: Vec<&[f64]> = strata
        .values()
        .map(|v| v.as_slice())
        .filter(|s| !s.is_empty())
        .collect();
    if views.is_empty() {
        return nan_ci(config.level);
    }
    bootstrap_stratified_ci(
        &views,
        |resampled| {
            let mut hi = f64::NEG_INFINITY;
            let mut lo = f64::INFINITY;
            for stratum in resampled.iter().filter(|s| !s.is_empty()) {
                let mean = stratum.iter().sum::<f64>() / stratum.len() as f64;
                hi = hi.max(mean);
                lo = lo.min(mean);
            }
            hi - lo
        },
        config.resamples,
        config.level,
        rng,
    )
}

/// Runs the sweep: every grid candidate against every trace, one
/// [`ThreadBudget`] lease for the whole batch, bootstrap CIs on every
/// reported gap, ranked most-parity-even first. See the module docs for
/// the determinism contract.
pub fn run_sweep(
    target: &dyn SweepTarget,
    traces: &[&dyn TraceSource],
    grid: &CandidateGrid,
    config: &SweepConfig,
    budget: &ThreadBudget,
) -> Result<SweepReport, SweepError> {
    if grid.is_empty() {
        return Err(SweepError::EmptyGrid);
    }
    if traces.is_empty() {
        return Err(SweepError::NoTraces);
    }
    for policy in &grid.policies {
        if !target.known_policies().contains(&policy.as_str()) {
            return Err(SweepError::UnknownAxisValue {
                axis: "policy",
                value: policy.clone(),
                known: target.known_policies().to_vec(),
            });
        }
    }
    for filter in &grid.filters {
        if !target.known_filters().contains(&filter.as_str()) {
            return Err(SweepError::UnknownAxisValue {
                axis: "filter",
                value: filter.clone(),
                known: target.known_filters().to_vec(),
            });
        }
    }

    let candidates = grid.candidates();
    let cells = candidates.len() * traces.len();
    let mut results: Vec<Option<Result<CellStats, String>>> = (0..cells).map(|_| None).collect();

    // One lease for the whole sweep: at most one lane per cell, and
    // whatever the budget can spare. With zero extra lanes the pool runs
    // every cell inline on this thread — same results, sequentially.
    eqimpact_telemetry::progress::add_goal(cells as u64);
    let lease = budget.lease(cells);
    let mut pool = WorkerPool::new(lease.extra());
    let jobs: Vec<PoolJob> = results
        .iter_mut()
        .enumerate()
        .map(|(cell, slot)| {
            let candidate = &candidates[cell / traces.len()];
            let trace = traces[cell % traces.len()];
            Box::new(move || {
                // Cells must not poison the pool (a panic in WorkerPool
                // jobs aborts the batch): catch here, report per cell.
                let outcome = {
                    let _cell = tm::SWEEP_CELLS.enter();
                    catch_unwind(AssertUnwindSafe(|| evaluate_cell(target, trace, candidate)))
                };
                *slot = Some(match outcome {
                    Ok(Ok(stats)) => Ok(stats),
                    Ok(Err(e)) => {
                        tm::SWEEP_CELL_ERRORS.incr();
                        Err(format!("{}: {e}", trace.label()))
                    }
                    Err(payload) => {
                        tm::SWEEP_CELL_ERRORS.incr();
                        Err(format!(
                            "{}: candidate panicked: {}",
                            trace.label(),
                            panic_message(payload.as_ref())
                        ))
                    }
                });
            }) as PoolJob
        })
        .collect();
    pool.run(jobs);
    drop(pool);
    drop(lease);

    // Sequential, index-ordered aggregation: candidate i's bootstrap RNG
    // depends only on (seed, i), never on scheduling.
    let mut ranked = Vec::with_capacity(candidates.len());
    for (ci, candidate) in candidates.iter().enumerate() {
        let mut errors = Vec::new();
        let mut evaluated = 0usize;
        let mut agreement_sum = 0.0;
        let mut agreement_count = 0usize;
        let mut parity: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let mut opportunity: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let mut outcome_delta = Vec::new();
        for slot in &mut results[ci * traces.len()..(ci + 1) * traces.len()] {
            match slot.take() {
                Some(Ok(stats)) => {
                    evaluated += 1;
                    if stats.agreement.is_finite() {
                        agreement_sum += stats.agreement;
                        agreement_count += 1;
                    }
                    for (label, shares) in stats.parity {
                        parity.entry(label).or_default().extend(shares);
                    }
                    for (label, shares) in stats.opportunity {
                        opportunity.entry(label).or_default().extend(shares);
                    }
                    outcome_delta.extend(stats.outcome_delta);
                }
                Some(Err(e)) => errors.push(e),
                None => errors.push("cell was never scheduled".to_string()),
            }
        }
        let base = SimRng::new(config.seed).split(candidate.index as u64);
        let parity_gap = gap_ci(&parity, config, &mut base.split(1));
        let opportunity_gap = gap_ci(&opportunity, config, &mut base.split(2));
        let outcome_delta = if outcome_delta.is_empty() {
            nan_ci(config.level)
        } else {
            bootstrap_mean_ci(
                &outcome_delta,
                config.resamples,
                config.level,
                &mut base.split(3),
            )
        };
        ranked.push(RankedCandidate {
            candidate: candidate.clone(),
            traces: evaluated,
            agreement: if agreement_count == 0 {
                f64::NAN
            } else {
                agreement_sum / agreement_count as f64
            },
            parity_gap,
            opportunity_gap,
            outcome_delta,
            errors,
        });
    }

    // Most demographically even first; ties broken by opportunity gap,
    // then by the candidate key — total_cmp orders NaN after every
    // number, so all-failed candidates sink to the bottom.
    ranked.sort_by(|a, b| {
        a.parity_gap
            .estimate
            .total_cmp(&b.parity_gap.estimate)
            .then_with(|| {
                a.opportunity_gap
                    .estimate
                    .total_cmp(&b.opportunity_gap.estimate)
            })
            .then_with(|| a.candidate.key().cmp(&b.candidate.key()))
    });

    Ok(SweepReport {
        scenario: target.name().to_string(),
        seed: config.seed,
        resamples: config.resamples,
        level: config.level,
        traces: traces.iter().map(|t| t.label().to_string()).collect(),
        candidates: candidates.len(),
        ranked,
    })
}
