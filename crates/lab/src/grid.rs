//! The candidate grid: which (policy, filter, threshold) combinations a
//! sweep evaluates, with a deterministic enumeration order and a compact
//! textual spec (`experiments sweep --grid`).
//!
//! A grid is three independent axes; its candidates are the cartesian
//! product enumerated **policy-major** (policy, then filter, then
//! threshold), so the same grid always yields the same candidate indices
//! — the anchor of the sweep's determinism contract and of the
//! per-candidate bootstrap RNG derivation.

use std::fmt;

/// The three sweep axes. Every combination of one policy, one filter and
/// one decision threshold is a candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateGrid {
    /// AI-policy names (workload-specific, e.g. `scorecard`).
    pub policies: Vec<String>,
    /// Feedback-filter names (workload-specific, e.g. `adr`).
    pub filters: Vec<String>,
    /// Positive-decision thresholds on the signal channel.
    pub thresholds: Vec<f64>,
}

impl CandidateGrid {
    /// A grid from explicit axes.
    pub fn new<P, F>(policies: P, filters: F, thresholds: impl IntoIterator<Item = f64>) -> Self
    where
        P: IntoIterator,
        P::Item: Into<String>,
        F: IntoIterator,
        F::Item: Into<String>,
    {
        CandidateGrid {
            policies: policies.into_iter().map(Into::into).collect(),
            filters: filters.into_iter().map(Into::into).collect(),
            thresholds: thresholds.into_iter().collect(),
        }
    }

    /// Parses a `--grid` spec, starting from `defaults` and replacing
    /// every axis the spec names. The syntax is semicolon-separated
    /// axes, each `axis=value,value,...`:
    ///
    /// ```text
    /// policy=scorecard,income-multiple;threshold=0,5,10
    /// ```
    ///
    /// Axis names are `policy`, `filter` and `threshold`. Unknown axes,
    /// empty value lists, repeated axes and unparsable thresholds are
    /// all errors — a typo must never silently shrink a sweep.
    pub fn parse(spec: &str, defaults: &CandidateGrid) -> Result<CandidateGrid, GridError> {
        let mut grid = defaults.clone();
        let mut seen = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (axis, values) = part.split_once('=').ok_or_else(|| GridError::BadSyntax {
                part: part.to_string(),
            })?;
            let axis = axis.trim();
            if seen.contains(&axis.to_string()) {
                return Err(GridError::DuplicateAxis {
                    axis: axis.to_string(),
                });
            }
            seen.push(axis.to_string());
            let values: Vec<&str> = values
                .split(',')
                .map(str::trim)
                .filter(|v| !v.is_empty())
                .collect();
            if values.is_empty() {
                return Err(GridError::EmptyAxis {
                    axis: axis.to_string(),
                });
            }
            match axis {
                "policy" => grid.policies = values.iter().map(|v| v.to_string()).collect(),
                "filter" => grid.filters = values.iter().map(|v| v.to_string()).collect(),
                "threshold" => {
                    grid.thresholds = values
                        .iter()
                        .map(|v| {
                            v.parse::<f64>().map_err(|_| GridError::BadThreshold {
                                value: v.to_string(),
                            })
                        })
                        .collect::<Result<_, _>>()?;
                }
                other => {
                    return Err(GridError::UnknownAxis {
                        axis: other.to_string(),
                    });
                }
            }
        }
        Ok(grid)
    }

    /// Number of candidates (the product of the axis lengths).
    pub fn len(&self) -> usize {
        self.policies.len() * self.filters.len() * self.thresholds.len()
    }

    /// Whether any axis is empty (no candidates).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates every candidate in the fixed policy-major order.
    pub fn candidates(&self) -> Vec<CandidateSpec> {
        let mut out = Vec::with_capacity(self.len());
        for policy in &self.policies {
            for filter in &self.filters {
                for &threshold in &self.thresholds {
                    out.push(CandidateSpec {
                        index: out.len(),
                        policy: policy.clone(),
                        filter: filter.clone(),
                        threshold,
                    });
                }
            }
        }
        out
    }
}

/// One point of a [`CandidateGrid`].
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSpec {
    /// Position in the grid's policy-major enumeration (stable across
    /// runs; seeds the candidate's bootstrap RNG).
    pub index: usize,
    /// AI-policy name.
    pub policy: String,
    /// Feedback-filter name.
    pub filter: String,
    /// Positive-decision threshold on the signal channel.
    pub threshold: f64,
}

impl CandidateSpec {
    /// A stable human-readable identity, also the final ranking
    /// tie-break (so equal-scoring candidates order deterministically).
    pub fn key(&self) -> String {
        format!("{}/{}/thr={}", self.policy, self.filter, self.threshold)
    }
}

/// A malformed `--grid` spec.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// An axis clause without `=`.
    BadSyntax {
        /// The offending clause.
        part: String,
    },
    /// An axis name other than `policy`, `filter`, `threshold`.
    UnknownAxis {
        /// The unrecognized name.
        axis: String,
    },
    /// An axis with no values.
    EmptyAxis {
        /// The empty axis.
        axis: String,
    },
    /// The same axis named twice.
    DuplicateAxis {
        /// The repeated axis.
        axis: String,
    },
    /// A threshold that does not parse as `f64`.
    BadThreshold {
        /// The unparsable value.
        value: String,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::BadSyntax { part } => {
                write!(f, "grid clause `{part}` is not `axis=value,...`")
            }
            GridError::UnknownAxis { axis } => write!(
                f,
                "unknown grid axis `{axis}` (known axes: policy, filter, threshold)"
            ),
            GridError::EmptyAxis { axis } => write!(f, "grid axis `{axis}` has no values"),
            GridError::DuplicateAxis { axis } => write!(f, "grid axis `{axis}` appears twice"),
            GridError::BadThreshold { value } => {
                write!(f, "grid threshold `{value}` is not a number")
            }
        }
    }
}

impl std::error::Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn defaults() -> CandidateGrid {
        CandidateGrid::new(["scorecard"], ["adr"], [0.0])
    }

    #[test]
    fn enumeration_is_policy_major_and_indexed() {
        let grid = CandidateGrid::new(["a", "b"], ["f"], [0.0, 1.0]);
        let candidates = grid.candidates();
        assert_eq!(candidates.len(), 4);
        assert_eq!(grid.len(), 4);
        let keys: Vec<String> = candidates.iter().map(|c| c.key()).collect();
        assert_eq!(
            keys,
            vec!["a/f/thr=0", "a/f/thr=1", "b/f/thr=0", "b/f/thr=1"]
        );
        for (i, c) in candidates.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn parse_overrides_only_named_axes() {
        let grid = CandidateGrid::parse("threshold=0,5,10", &defaults()).unwrap();
        assert_eq!(grid.policies, vec!["scorecard"]);
        assert_eq!(grid.filters, vec!["adr"]);
        assert_eq!(grid.thresholds, vec![0.0, 5.0, 10.0]);
        let grid = CandidateGrid::parse("policy=a,b;filter=g", &defaults()).unwrap();
        assert_eq!(grid.policies, vec!["a", "b"]);
        assert_eq!(grid.filters, vec!["g"]);
        assert_eq!(grid.thresholds, vec![0.0]);
        // Whitespace and empty clauses are tolerated.
        let grid = CandidateGrid::parse(" policy = a , b ; ", &defaults()).unwrap();
        assert_eq!(grid.policies, vec!["a", "b"]);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(matches!(
            CandidateGrid::parse("policies=a", &defaults()),
            Err(GridError::UnknownAxis { .. })
        ));
        assert!(matches!(
            CandidateGrid::parse("policy", &defaults()),
            Err(GridError::BadSyntax { .. })
        ));
        assert!(matches!(
            CandidateGrid::parse("policy=", &defaults()),
            Err(GridError::EmptyAxis { .. })
        ));
        assert!(matches!(
            CandidateGrid::parse("policy=a;policy=b", &defaults()),
            Err(GridError::DuplicateAxis { .. })
        ));
        assert!(matches!(
            CandidateGrid::parse("threshold=zero", &defaults()),
            Err(GridError::BadThreshold { .. })
        ));
    }

    #[test]
    fn empty_axis_means_empty_grid() {
        let grid = CandidateGrid::new(Vec::<String>::new(), ["f"], [0.0]);
        assert!(grid.is_empty());
        assert!(grid.candidates().is_empty());
    }
}
