//! Average default rates (eq. (12)): per-user and per-race, both as a
//! standalone tracker and as the closed loop's feedback filter.
//!
//! A *default* is a mortgage offered but not repaid
//! (`y_i(k) = 0 | π(k, i) = 1`); the average default rate of user `i` at
//! time `k` is the fraction of defaults among all offers made to `i` up to
//! `k`. Users never offered anything carry a clean history (`ADR = 0`),
//! matching the initialization of the paper (everyone approved in
//! 2002-2003 before any scorecard exists).

use eqimpact_core::checkpoint::ModelCheckpoint;
use eqimpact_core::closed_loop::{Feedback, FeedbackFilter};
use eqimpact_core::features::FeatureMatrix;

/// Per-user running default statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct AdrTracker {
    offers: Vec<u64>,
    defaults: Vec<u64>,
}

impl AdrTracker {
    /// Creates a tracker for `n` users.
    pub fn new(n: usize) -> Self {
        AdrTracker {
            offers: vec![0; n],
            defaults: vec![0; n],
        }
    }

    /// Number of users tracked.
    pub fn user_count(&self) -> usize {
        self.offers.len()
    }

    /// Records one step: `loans[i] > 0` means an offer; an offer with
    /// `repaid[i] == 0` is a default.
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn record(&mut self, loans: &[f64], repaid: &[f64]) {
        assert_eq!(loans.len(), self.offers.len(), "loans length");
        assert_eq!(repaid.len(), self.offers.len(), "repaid length");
        for i in 0..loans.len() {
            if loans[i] > 0.0 {
                self.offers[i] += 1;
                if repaid[i] == 0.0 {
                    self.defaults[i] += 1;
                }
            }
        }
    }

    /// `ADR_i(k)`: defaults over offers for user `i`; 0 for users never
    /// offered credit (clean history).
    pub fn adr(&self, i: usize) -> f64 {
        if self.offers[i] == 0 {
            0.0
        } else {
            self.defaults[i] as f64 / self.offers[i] as f64
        }
    }

    /// The full per-user ADR vector.
    pub fn adr_all(&self) -> Vec<f64> {
        (0..self.offers.len()).map(|i| self.adr(i)).collect()
    }

    /// Writes the full per-user ADR vector into `out` (cleared first).
    pub fn adr_all_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.offers.len()).map(|i| self.adr(i)));
    }

    /// `ADR_s(k)`: mean individual ADR over a set of user indices (eq.
    /// (12)'s race-wise version). `NaN` for an empty set.
    pub fn adr_group(&self, members: &[usize]) -> f64 {
        if members.is_empty() {
            return f64::NAN;
        }
        members.iter().map(|&i| self.adr(i)).sum::<f64>() / members.len() as f64
    }

    /// Total offers made to user `i`.
    pub fn offers(&self, i: usize) -> u64 {
        self.offers[i]
    }

    /// Total defaults of user `i`.
    pub fn defaults(&self, i: usize) -> u64 {
        self.defaults[i]
    }
}

/// The loop's feedback filter: maintains the [`AdrTracker`] and emits
/// `per_user = ADR_i(k)` — the "filter calculates the average default
/// rates of each user, using historical repayment actions" of Sec. VII.
#[derive(Debug, Clone, Default)]
pub struct AdrFilter {
    tracker: Option<AdrTracker>,
}

impl AdrFilter {
    /// Creates an empty filter (sized on first use).
    pub fn new() -> Self {
        AdrFilter::default()
    }

    /// The tracker, if any step has been filtered.
    pub fn tracker(&self) -> Option<&AdrTracker> {
        self.tracker.as_ref()
    }
}

impl FeedbackFilter for AdrFilter {
    fn apply_into(
        &mut self,
        k: usize,
        visible: &FeatureMatrix,
        signals: &[f64],
        actions: &[f64],
        out: &mut Feedback,
    ) {
        let tracker = self
            .tracker
            .get_or_insert_with(|| AdrTracker::new(actions.len()));
        tracker.record(signals, actions);
        let offered = signals.iter().filter(|&&l| l > 0.0).count();
        out.step = k;
        tracker.adr_all_into(&mut out.per_user);
        out.aggregate = if offered == 0 {
            0.0
        } else {
            signals
                .iter()
                .zip(actions)
                .filter(|(&l, _)| l > 0.0)
                .map(|(_, &y)| 1.0 - y)
                .sum::<f64>()
                / offered as f64
        };
        out.visible.fill_from(visible);
        out.signals.clear();
        out.signals.extend_from_slice(signals);
        out.actions.clear();
        out.actions.extend_from_slice(actions);
    }

    fn checkpoint_into(&self, out: &mut ModelCheckpoint) -> bool {
        let Some(tracker) = &self.tracker else {
            return false;
        };
        out.field_mut("filter.offers")
            .extend(tracker.offers.iter().map(|&c| c as f64));
        out.field_mut("filter.defaults")
            .extend(tracker.defaults.iter().map(|&c| c as f64));
        true
    }

    fn restore_checkpoint(&mut self, checkpoint: &ModelCheckpoint) -> bool {
        let (Some(offers), Some(defaults)) = (
            checkpoint.field("filter.offers"),
            checkpoint.field("filter.defaults"),
        ) else {
            return false;
        };
        // Counts are exact in f64 (bounded by steps, far below 2^53).
        self.tracker = Some(AdrTracker {
            offers: offers.iter().map(|&c| c as u64).collect(),
            defaults: defaults.iter().map(|&c| c as u64).collect(),
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts_offers_and_defaults() {
        let mut t = AdrTracker::new(3);
        assert_eq!(t.user_count(), 3);
        // User 0 offered & repaid, user 1 offered & defaulted, user 2 not offered.
        t.record(&[100.0, 50.0, 0.0], &[1.0, 0.0, 0.0]);
        assert_eq!(t.adr(0), 0.0);
        assert_eq!(t.adr(1), 1.0);
        assert_eq!(t.adr(2), 0.0); // clean history, not a default
        assert_eq!(t.offers(2), 0);

        t.record(&[100.0, 50.0, 10.0], &[0.0, 1.0, 1.0]);
        assert_eq!(t.adr(0), 0.5);
        assert_eq!(t.adr(1), 0.5);
        assert_eq!(t.adr(2), 0.0);
        assert_eq!(t.defaults(0), 1);
    }

    #[test]
    fn group_adr_is_mean_of_individuals() {
        let mut t = AdrTracker::new(4);
        t.record(&[1.0, 1.0, 1.0, 1.0], &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(t.adr_group(&[0, 1]), 0.5);
        assert_eq!(t.adr_group(&[2, 3]), 0.5);
        assert_eq!(t.adr_group(&[0, 3]), 0.0);
        assert!(t.adr_group(&[]).is_nan());
        assert_eq!(t.adr_all(), vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn filter_emits_adr_per_user() {
        let mut f = AdrFilter::new();
        assert!(f.tracker().is_none());
        let visible = FeatureMatrix::from_nested(&[vec![1.0], vec![0.0]]);
        let fb = f.apply(0, &visible, &[100.0, 100.0], &[1.0, 0.0]);
        assert_eq!(fb.per_user, vec![0.0, 1.0]);
        assert_eq!(fb.aggregate, 0.5);
        assert_eq!(fb.step, 0);
        assert_eq!(fb.visible, visible);

        // Second step: user 1 denied; their ADR freezes at 1.0.
        let fb2 = f.apply(1, &visible, &[100.0, 0.0], &[1.0, 0.0]);
        assert_eq!(fb2.per_user, vec![0.0, 1.0]);
        assert_eq!(fb2.aggregate, 0.0);
        assert!(f.tracker().is_some());
    }

    #[test]
    fn filter_aggregate_with_no_offers() {
        let mut f = AdrFilter::new();
        let fb = f.apply(0, &FeatureMatrix::zeros(1, 0), &[0.0], &[0.0]);
        assert_eq!(fb.aggregate, 0.0);
        assert_eq!(fb.per_user, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "loans length")]
    fn tracker_rejects_mismatch() {
        let mut t = AdrTracker::new(2);
        t.record(&[1.0], &[1.0, 0.0]);
    }
}
