//! The user-population block: census households with eq. (10)-(11)
//! repayment behaviour.

use crate::lender::{VISIBLE_INCOME_CODE, VISIBLE_INCOME_K};
use crate::model;
use eqimpact_census::{IncomeTable, Population, Race, FIRST_YEAR, LAST_YEAR};
use eqimpact_core::closed_loop::UserPopulation;
use eqimpact_core::features::FeatureMatrix;
use eqimpact_stats::SimRng;

/// Width of the visible feature rows: `[income_code, income]`.
pub const VISIBLE_WIDTH: usize = 2;

/// The Sec. VII population: `N` households whose incomes are resampled
/// every year from the census tables (clamped at the table's last year for
/// longer ablation runs), responding per the Gaussian conditional
/// independence model.
pub struct CreditPopulation {
    table: IncomeTable,
    population: Population,
    start_year: u32,
}

impl CreditPopulation {
    /// Generates a population of `n` users with a deterministic stream.
    pub fn generate(n: usize, rng: &mut SimRng) -> Self {
        let table = IncomeTable::embedded();
        let population = Population::generate(&table, n, FIRST_YEAR, rng)
            .expect("FIRST_YEAR is always in range");
        CreditPopulation {
            table,
            population,
            start_year: FIRST_YEAR,
        }
    }

    /// Race of user `i`.
    pub fn race(&self, i: usize) -> Race {
        self.population.households()[i].race
    }

    /// All races in user order.
    pub fn races(&self) -> Vec<Race> {
        self.population.households().iter().map(|h| h.race).collect()
    }

    /// User indices per race (`N_s`).
    pub fn race_indices(&self, race: Race) -> Vec<usize> {
        self.population.indices_of_race(race)
    }

    /// The calendar year simulated at step `k` (clamped to the table).
    pub fn year_of_step(&self, k: usize) -> u32 {
        (self.start_year + k as u32).min(LAST_YEAR)
    }
}

impl UserPopulation for CreditPopulation {
    fn user_count(&self) -> usize {
        self.population.len()
    }

    fn observe_into(&mut self, k: usize, rng: &mut SimRng, out: &mut FeatureMatrix) {
        let year = self.year_of_step(k);
        // Step 0 keeps the generation-time incomes; later steps resample
        // from that year's distribution (the paper's yearly `z_i(k)`).
        if k > 0 {
            self.population
                .resample_incomes(&self.table, year, rng)
                .expect("year clamped into range");
        }
        out.reshape(self.population.len(), VISIBLE_WIDTH);
        for (i, h) in self.population.households().iter().enumerate() {
            let row = out.row_mut(i);
            row[VISIBLE_INCOME_CODE] = model::income_code(h.income);
            row[VISIBLE_INCOME_K] = h.income;
        }
    }

    fn respond_into(&mut self, _k: usize, signals: &[f64], rng: &mut SimRng, out: &mut Vec<f64>) {
        assert_eq!(signals.len(), self.population.len(), "signals length");
        out.clear();
        out.extend(
            self.population
                .households()
                .iter()
                .zip(signals)
                .map(|(h, &loan)| model::sample_repayment(h.income, loan, rng)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_and_race_access() {
        let mut rng = SimRng::new(1);
        let pop = CreditPopulation::generate(300, &mut rng);
        assert_eq!(pop.user_count(), 300);
        let total: usize = Race::ALL.iter().map(|&r| pop.race_indices(r).len()).sum();
        assert_eq!(total, 300);
        assert_eq!(pop.races().len(), 300);
        assert_eq!(pop.race(0), pop.races()[0]);
    }

    #[test]
    fn year_clamping() {
        let mut rng = SimRng::new(2);
        let pop = CreditPopulation::generate(10, &mut rng);
        assert_eq!(pop.year_of_step(0), 2002);
        assert_eq!(pop.year_of_step(18), 2020);
        assert_eq!(pop.year_of_step(50), 2020);
    }

    #[test]
    fn observe_exposes_code_and_income() {
        let mut rng = SimRng::new(3);
        let mut pop = CreditPopulation::generate(50, &mut rng);
        let visible = pop.observe(0, &mut rng);
        assert_eq!(visible.row_count(), 50);
        assert_eq!(visible.width(), VISIBLE_WIDTH);
        for row in visible.rows() {
            let code = row[VISIBLE_INCOME_CODE];
            let income = row[VISIBLE_INCOME_K];
            assert_eq!(code, model::income_code(income));
            assert!(income > 0.0);
        }
    }

    #[test]
    fn observe_resamples_after_step_zero() {
        let mut rng = SimRng::new(4);
        let mut pop = CreditPopulation::generate(100, &mut rng);
        let v0 = pop.observe(0, &mut rng);
        let v1 = pop.observe(1, &mut rng);
        let changed = v0
            .rows()
            .zip(v1.rows())
            .filter(|(a, b)| a[VISIBLE_INCOME_K] != b[VISIBLE_INCOME_K])
            .count();
        assert!(changed > 95, "only {changed} incomes changed");
    }

    #[test]
    fn respond_follows_the_model() {
        let mut rng = SimRng::new(5);
        let mut pop = CreditPopulation::generate(200, &mut rng);
        let visible = pop.observe(0, &mut rng);
        // Denied users never repay.
        let denied = vec![0.0; 200];
        let actions = pop.respond(0, &denied, &mut rng);
        assert!(actions.iter().all(|&y| y == 0.0));
        // Generous incomes with the paper's sizing mostly repay.
        let loans: Vec<f64> = visible
            .rows()
            .map(|v| model::income_multiple_loan(v[VISIBLE_INCOME_K]))
            .collect();
        let actions = pop.respond(0, &loans, &mut rng);
        let repay_rate = actions.iter().sum::<f64>() / 200.0;
        assert!(repay_rate > 0.7, "repay rate = {repay_rate}");
    }
}
