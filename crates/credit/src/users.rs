//! The user-population block: census households with eq. (10)-(11)
//! repayment behaviour.
//!
//! [`CreditPopulation`] is **shardable**: household state is purely
//! per-user, so the population partitions into contiguous
//! [`CreditShard`]s that observe/respond concurrently. All randomness of
//! household `i` at step `k` — the yearly income resample and the
//! repayment draw — comes from the index-keyed
//! [`RowStreams`](eqimpact_core::shard::RowStreams), which is what makes
//! the loop's record bit-identical for any shard count (the sequential
//! `*_into` methods route through the same per-row sweep).

use crate::lender::{VISIBLE_INCOME_CODE, VISIBLE_INCOME_K};
use crate::model;
use eqimpact_census::{
    Household, HouseholdSampler, IncomeTable, Population, Race, FIRST_YEAR, LAST_YEAR,
};
use eqimpact_core::closed_loop::UserPopulation;
use eqimpact_core::features::FeatureMatrix;
use eqimpact_core::shard::{
    shard_bounds, ColsMut, PopulationShard, RowStreams, ShardablePopulation,
};
use eqimpact_stats::SimRng;
use std::ops::Range;
use std::sync::Arc;

/// Width of the visible feature rows: `[income_code, income]`.
pub const VISIBLE_WIDTH: usize = 2;

/// The Sec. VII population: `N` households whose incomes are resampled
/// every year from the census tables (clamped at the table's last year for
/// longer ablation runs), responding per the Gaussian conditional
/// independence model.
pub struct CreditPopulation {
    table: Arc<IncomeTable>,
    population: Population,
    start_year: u32,
}

impl CreditPopulation {
    /// Generates a population of `n` users with a deterministic stream.
    pub fn generate(n: usize, rng: &mut SimRng) -> Self {
        let table = Arc::new(IncomeTable::embedded());
        let population = Population::generate(&table, n, FIRST_YEAR, rng)
            .expect("FIRST_YEAR is always in range");
        CreditPopulation {
            table,
            population,
            start_year: FIRST_YEAR,
        }
    }

    /// Race of user `i`.
    pub fn race(&self, i: usize) -> Race {
        self.population.households()[i].race
    }

    /// All races in user order.
    pub fn races(&self) -> Vec<Race> {
        self.population
            .households()
            .iter()
            .map(|h| h.race)
            .collect()
    }

    /// User indices per race (`N_s`).
    pub fn race_indices(&self, race: Race) -> Vec<usize> {
        self.population.indices_of_race(race)
    }

    /// The calendar year simulated at step `k` (clamped to the table).
    pub fn year_of_step(&self, k: usize) -> u32 {
        year_of_step(self.start_year, k)
    }
}

/// The calendar year of step `k` from a start year, clamped to the table.
fn year_of_step(start_year: u32, k: usize) -> u32 {
    start_year
        .saturating_add(k.min(u32::MAX as usize) as u32)
        .min(LAST_YEAR)
}

/// The shared observe sweep: resamples incomes (steps > 0) and writes the
/// visible columns, drawing household `start_row + j`'s randomness from
/// `streams.for_row(start_row + j)`.
fn observe_household_cols(
    table: &IncomeTable,
    households: &mut [Household],
    start_row: usize,
    k: usize,
    year: u32,
    streams: &RowStreams,
    out: &mut ColsMut<'_>,
) {
    let sampler = HouseholdSampler::new(table);
    let (code_col, income_col) = out.cols_pair_mut(VISIBLE_INCOME_CODE, VISIBLE_INCOME_K);
    for (j, h) in households.iter_mut().enumerate() {
        let i = start_row + j;
        // Step 0 keeps the generation-time incomes; later steps resample
        // from that year's distribution (the paper's yearly `z_i(k)`).
        if k > 0 {
            let mut rng = streams.for_row(i);
            h.income = sampler
                .sample_income(year, h.race, &mut rng)
                .expect("year clamped into range");
        }
        code_col[j] = model::income_code(h.income);
        income_col[j] = h.income;
    }
}

/// The shared respond sweep: eq. (11) repayment per household, randomness
/// keyed by the global row.
fn respond_household_rows(
    households: &[Household],
    start_row: usize,
    signals: &[f64],
    streams: &RowStreams,
    out: &mut [f64],
) {
    assert_eq!(signals.len(), households.len(), "signals length");
    for (j, (h, &loan)) in households.iter().zip(signals).enumerate() {
        let mut rng = streams.for_row(start_row + j);
        out[j] = model::sample_repayment(h.income, loan, &mut rng);
    }
}

impl UserPopulation for CreditPopulation {
    fn user_count(&self) -> usize {
        self.population.len()
    }

    fn observe_into(&mut self, k: usize, rng: &mut SimRng, out: &mut FeatureMatrix) {
        let n = self.population.len();
        let year = self.year_of_step(k);
        let streams = RowStreams::observe(rng, k);
        out.reshape(n, VISIBLE_WIDTH);
        let mut cols = ColsMut::full(out);
        observe_household_cols(
            &self.table,
            self.population.households_mut(),
            0,
            k,
            year,
            &streams,
            &mut cols,
        );
    }

    fn respond_into(&mut self, k: usize, signals: &[f64], rng: &mut SimRng, out: &mut Vec<f64>) {
        let n = self.population.len();
        let streams = RowStreams::respond(rng, k);
        out.clear();
        out.resize(n, 0.0);
        respond_household_rows(self.population.households(), 0, signals, &streams, out);
    }
}

/// One contiguous row-partition of a [`CreditPopulation`]: owns its
/// households, shares the (read-only) income table.
pub struct CreditShard {
    table: Arc<IncomeTable>,
    households: Vec<Household>,
    start_row: usize,
    start_year: u32,
}

impl PopulationShard for CreditShard {
    fn rows(&self) -> Range<usize> {
        self.start_row..self.start_row + self.households.len()
    }

    fn observe_cols(&mut self, k: usize, streams: &RowStreams, out: &mut ColsMut<'_>) {
        let year = year_of_step(self.start_year, k);
        observe_household_cols(
            &self.table,
            &mut self.households,
            self.start_row,
            k,
            year,
            streams,
            out,
        );
    }

    fn respond_rows(&mut self, _k: usize, signals: &[f64], streams: &RowStreams, out: &mut [f64]) {
        respond_household_rows(&self.households, self.start_row, signals, streams, out);
    }
}

impl ShardablePopulation for CreditPopulation {
    type Shard = CreditShard;

    fn feature_width(&self) -> usize {
        VISIBLE_WIDTH
    }

    fn into_row_shards(self, parts: usize) -> Vec<CreditShard> {
        let CreditPopulation {
            table,
            population,
            start_year,
        } = self;
        let mut households = population.into_households();
        let bounds = shard_bounds(households.len(), parts);
        let mut shards = Vec::with_capacity(bounds.len());
        // Split back-to-front so each chunk is a cheap tail split.
        for range in bounds.into_iter().rev() {
            let chunk = households.split_off(range.start);
            shards.push(CreditShard {
                table: Arc::clone(&table),
                households: chunk,
                start_row: range.start,
                start_year,
            });
        }
        shards.reverse();
        shards
    }

    fn from_row_shards(shards: Vec<CreditShard>) -> Self {
        let mut shards = shards;
        shards.sort_by_key(|s| s.start_row);
        let table = shards
            .first()
            .map(|s| Arc::clone(&s.table))
            .unwrap_or_else(|| Arc::new(IncomeTable::embedded()));
        let start_year = shards.first().map(|s| s.start_year).unwrap_or(FIRST_YEAR);
        let mut households = Vec::with_capacity(shards.iter().map(|s| s.households.len()).sum());
        for shard in shards {
            households.extend(shard.households);
        }
        CreditPopulation {
            table,
            population: Population::from_households(households),
            start_year,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_and_race_access() {
        let mut rng = SimRng::new(1);
        let pop = CreditPopulation::generate(300, &mut rng);
        assert_eq!(pop.user_count(), 300);
        let total: usize = Race::ALL.iter().map(|&r| pop.race_indices(r).len()).sum();
        assert_eq!(total, 300);
        assert_eq!(pop.races().len(), 300);
        assert_eq!(pop.race(0), pop.races()[0]);
    }

    #[test]
    fn year_clamping() {
        let mut rng = SimRng::new(2);
        let pop = CreditPopulation::generate(10, &mut rng);
        assert_eq!(pop.year_of_step(0), 2002);
        assert_eq!(pop.year_of_step(18), 2020);
        assert_eq!(pop.year_of_step(50), 2020);
    }

    #[test]
    fn observe_exposes_code_and_income() {
        let mut rng = SimRng::new(3);
        let mut pop = CreditPopulation::generate(50, &mut rng);
        let visible = pop.observe(0, &mut rng);
        assert_eq!(visible.row_count(), 50);
        assert_eq!(visible.width(), VISIBLE_WIDTH);
        for (&code, &income) in visible
            .col(VISIBLE_INCOME_CODE)
            .iter()
            .zip(visible.col(VISIBLE_INCOME_K))
        {
            assert_eq!(code, model::income_code(income));
            assert!(income > 0.0);
        }
    }

    #[test]
    fn observe_resamples_after_step_zero() {
        let mut rng = SimRng::new(4);
        let mut pop = CreditPopulation::generate(100, &mut rng);
        let v0 = pop.observe(0, &mut rng);
        let v1 = pop.observe(1, &mut rng);
        let changed = v0
            .col(VISIBLE_INCOME_K)
            .iter()
            .zip(v1.col(VISIBLE_INCOME_K))
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed > 95, "only {changed} incomes changed");
    }

    #[test]
    fn respond_follows_the_model() {
        let mut rng = SimRng::new(5);
        let mut pop = CreditPopulation::generate(200, &mut rng);
        let visible = pop.observe(0, &mut rng);
        // Denied users never repay.
        let denied = vec![0.0; 200];
        let actions = pop.respond(0, &denied, &mut rng);
        assert!(actions.iter().all(|&y| y == 0.0));
        // Generous incomes with the paper's sizing mostly repay.
        let loans: Vec<f64> = visible
            .col(VISIBLE_INCOME_K)
            .iter()
            .map(|&v| model::income_multiple_loan(v))
            .collect();
        let actions = pop.respond(0, &loans, &mut rng);
        let repay_rate = actions.iter().sum::<f64>() / 200.0;
        assert!(repay_rate > 0.7, "repay rate = {repay_rate}");
    }

    #[test]
    fn shard_roundtrip_preserves_households() {
        let mut rng = SimRng::new(6);
        let pop = CreditPopulation::generate(97, &mut rng);
        let races = pop.races();
        let shards = pop.into_row_shards(5);
        assert_eq!(shards.len(), 5);
        assert_eq!(shards[0].rows().start, 0);
        assert_eq!(shards.last().unwrap().rows().end, 97);
        let back = CreditPopulation::from_row_shards(shards);
        assert_eq!(back.user_count(), 97);
        assert_eq!(back.races(), races);
    }

    #[test]
    fn sharded_sweeps_match_sequential() {
        // The per-row stream contract in action: a 3-shard observe/respond
        // pass writes exactly what the sequential population writes.
        let mut rng = SimRng::new(7);
        let n = 60;
        let mut pop = CreditPopulation::generate(n, &mut rng);
        let mut shards = CreditPopulation::generate(n, &mut SimRng::new(7)).into_row_shards(3);

        let root = SimRng::new(40);
        for k in 0..4 {
            let mut seq_rng = root.clone();
            let visible = pop.observe(k, &mut seq_rng);
            let signals: Vec<f64> = visible
                .col(VISIBLE_INCOME_K)
                .iter()
                .map(|&v| model::income_multiple_loan(v))
                .collect();
            let actions = pop.respond(k, &signals, &mut seq_rng);

            let observe = RowStreams::observe(&root, k);
            let respond = RowStreams::respond(&root, k);
            let mut vis = FeatureMatrix::zeros(n, VISIBLE_WIDTH);
            let mut act = vec![0.0; n];
            for shard in shards.iter_mut() {
                let rows = shard.rows();
                let cols: Vec<&mut [f64]> = vis
                    .col_slices_mut()
                    .into_iter()
                    .map(|c| &mut c[rows.start..rows.end])
                    .collect();
                let mut out = ColsMut::new(cols, rows.clone());
                shard.observe_cols(k, &observe, &mut out);
                shard.respond_rows(k, &signals[rows.clone()], &respond, &mut act[rows]);
            }
            assert_eq!(vis, visible, "step {k} features");
            assert_eq!(act, actions, "step {k} actions");
        }
    }
}
