//! Extraction of the paper's artifacts (Table I, Figs. 2-5) from trial
//! outcomes, as plain data structures and CSV renderers.

use crate::sim::CreditOutcome;
use eqimpact_census::{IncomeTable, Race, BRACKETS};
use eqimpact_ml::scorecard::Scorecard;
use eqimpact_stats::describe::Summary;
use eqimpact_stats::hist::Histogram2D;
use eqimpact_stats::{Json, ToJson};

/// The paper's Table I reference values: `(history, income)` points.
pub const TABLE1_PAPER_REFERENCE: (f64, f64) = (-8.17, 5.77);

/// Table I: a learned scorecard condensed to the paper's comparison —
/// the single extraction shared by the `credit` scenario and the bench
/// harness, so the published artifact cannot fork from the test surface.
#[derive(Debug, Clone)]
pub struct Table1Scorecard {
    /// Learned points per unit of average default rate ("History").
    pub history_points: f64,
    /// Learned points for the income code ("Income > $15K").
    pub income_points: f64,
    /// Learned base points (intercept).
    pub base_points: f64,
    /// The paper's reference values [`TABLE1_PAPER_REFERENCE`].
    pub paper_reference: (f64, f64),
    /// The worked example's score for ADR 0.1, income code 1 (the paper
    /// reports 4.953 for its reference card, excluding base points).
    pub example_score: f64,
}

impl Table1Scorecard {
    /// Condenses a learned scorecard (factor order: History = ADR,
    /// Income = code) to the Table I comparison.
    pub fn from_scorecard(card: &Scorecard) -> Self {
        let history = card.rows[0].points_per_unit;
        let income = card.rows[1].points_per_unit;
        Table1Scorecard {
            history_points: history,
            income_points: income,
            base_points: card.base_points,
            paper_reference: TABLE1_PAPER_REFERENCE,
            example_score: history * 0.1 + income,
        }
    }
}

impl ToJson for Table1Scorecard {
    fn to_json(&self) -> Json {
        Json::obj([
            ("history_points", self.history_points.to_json()),
            ("income_points", self.income_points.to_json()),
            ("base_points", self.base_points.to_json()),
            ("paper_reference", self.paper_reference.to_json()),
            ("example_score", self.example_score.to_json()),
        ])
    }
}

/// Fig. 3 data: per race, the cross-trial mean and ±1 standard deviation
/// of `{ADR_s(k)}` per step.
#[derive(Debug, Clone)]
pub struct RaceAdrSummary {
    /// The race.
    pub race: String,
    /// Per-step mean across trials.
    pub mean: Vec<f64>,
    /// Per-step population standard deviation across trials.
    pub std: Vec<f64>,
}

/// Builds the Fig. 3 series from a set of trial outcomes.
///
/// # Panics
/// Panics when `outcomes` is empty or trials disagree on step counts.
pub fn fig3_race_adr(outcomes: &[CreditOutcome]) -> Vec<RaceAdrSummary> {
    assert!(!outcomes.is_empty(), "fig3: no outcomes");
    let steps = outcomes[0].record.steps();
    assert!(
        outcomes.iter().all(|o| o.record.steps() == steps),
        "fig3: unequal step counts"
    );
    Race::ALL
        .iter()
        .map(|&race| {
            let series: Vec<Vec<f64>> = outcomes.iter().map(|o| o.race_adr_series(race)).collect();
            let mut mean = Vec::with_capacity(steps);
            let mut std = Vec::with_capacity(steps);
            for k in 0..steps {
                let mut s = Summary::new();
                for trial in &series {
                    if !trial[k].is_nan() {
                        s.push(trial[k]);
                    }
                }
                mean.push(s.mean());
                std.push(s.std_dev_population());
            }
            RaceAdrSummary {
                race: race.label().to_string(),
                mean,
                std,
            }
        })
        .collect()
}

/// Fig. 4 data: every `{ADR_i(k)}` trajectory across all trials, tagged
/// with its race label (the paper's 5 x 1000 coloured curves).
pub fn fig4_user_adr(outcomes: &[CreditOutcome]) -> Vec<(String, Vec<f64>)> {
    let mut out = Vec::new();
    for o in outcomes {
        for i in 0..o.record.user_count() {
            out.push((o.races[i].label().to_string(), o.user_adr_series(i)));
        }
    }
    out
}

/// Fig. 5 data: the (step x ADR) density histogram over all users and
/// trials, race information erased.
pub fn fig5_density(outcomes: &[CreditOutcome], adr_bins: usize) -> Histogram2D {
    assert!(!outcomes.is_empty(), "fig5: no outcomes");
    let steps = outcomes[0].record.steps();
    let mut hist = Histogram2D::new(steps, 0.0, 1.0 + 1e-9, adr_bins);
    for o in outcomes {
        for k in 0..steps.min(o.record.steps()) {
            for &adr in o.record.filtered(k) {
                hist.add(k, adr);
            }
        }
    }
    hist
}

/// Fig. 2 data: the income distribution of a year by race, as
/// `(bracket label, [share per race in Race::ALL order])` rows.
pub fn fig2_income_distribution(table: &IncomeTable, year: u32) -> Vec<(String, [f64; 3])> {
    BRACKETS
        .iter()
        .enumerate()
        .map(|(b, bracket)| {
            let mut row = [0.0; 3];
            for race in Race::ALL {
                row[race.index()] = table
                    .shares(year, race)
                    .expect("caller passes a valid year")[b];
            }
            (bracket.label.to_string(), row)
        })
        .collect()
}

/// Renders the Fig. 3 series as CSV:
/// `year,race,mean,std`.
pub fn fig3_csv(summaries: &[RaceAdrSummary], first_year: u32) -> String {
    let mut csv = String::from("year,race,mean_adr,std_adr\n");
    for s in summaries {
        for (k, (m, sd)) in s.mean.iter().zip(&s.std).enumerate() {
            csv.push_str(&format!(
                "{},{},{:.6},{:.6}\n",
                first_year + k as u32,
                s.race,
                m,
                sd
            ));
        }
    }
    csv
}

/// Renders the Fig. 4 trajectories as CSV: `series_id,race,year,adr`.
pub fn fig4_csv(series: &[(String, Vec<f64>)], first_year: u32) -> String {
    let mut csv = String::from("series_id,race,year,adr\n");
    for (id, (race, traj)) in series.iter().enumerate() {
        for (k, adr) in traj.iter().enumerate() {
            csv.push_str(&format!(
                "{},{},{},{:.6}\n",
                id,
                race,
                first_year + k as u32,
                adr
            ));
        }
    }
    csv
}

/// Renders the Fig. 5 density as CSV: `year,adr_bin_center,density`.
pub fn fig5_csv(hist: &Histogram2D, first_year: u32) -> String {
    let mut csv = String::from("year,adr,density\n");
    for x in 0..hist.x_len() {
        for b in 0..hist.y_bins() {
            csv.push_str(&format!(
                "{},{:.4},{:.6}\n",
                first_year + x as u32,
                hist.y_bin_center(b),
                hist.col_density(x, b)
            ));
        }
    }
    csv
}

/// Renders the Fig. 2 distribution as CSV: `bracket,black,white,asian`.
pub fn fig2_csv(rows: &[(String, [f64; 3])]) -> String {
    let mut csv = String::from("bracket,black_alone,white_alone,asian_alone\n");
    for (label, shares) in rows {
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4}\n",
            label, shares[0], shares[1], shares[2]
        ));
    }
    csv
}

/// Approval-rate series by race: `rates[race_index][k]` = fraction of the
/// race approved at step `k`, averaged across trials. The access view of
/// the introduction's example.
pub fn approval_rates_by_race(outcomes: &[CreditOutcome]) -> Vec<Vec<f64>> {
    assert!(!outcomes.is_empty(), "approval rates: no outcomes");
    let steps = outcomes[0].record.steps();
    Race::ALL
        .iter()
        .map(|&race| {
            (0..steps)
                .map(|k| {
                    let mut approved = 0usize;
                    let mut total = 0usize;
                    for o in outcomes {
                        let members = o.race_indices(race);
                        let signals = o.record.signals(k);
                        for &i in &members {
                            total += 1;
                            if signals[i] > 0.0 {
                                approved += 1;
                            }
                        }
                    }
                    if total == 0 {
                        f64::NAN
                    } else {
                        approved as f64 / total as f64
                    }
                })
                .collect()
        })
        .collect()
}

/// Renders the approval series as CSV: `year,race,approval_rate`.
pub fn approval_csv(rates: &[Vec<f64>], first_year: u32) -> String {
    let mut csv = String::from(
        "year,race,approval_rate
",
    );
    for (race, series) in Race::ALL.iter().zip(rates) {
        for (k, r) in series.iter().enumerate() {
            csv.push_str(&format!(
                "{},{},{:.6}
",
                first_year + k as u32,
                race.label(),
                r
            ));
        }
    }
    csv
}

/// Bootstrap confidence interval for a race's final-year ADR, resampling
/// **users** within the race pooled across trials. A distribution-free
/// companion to Fig. 3's ±1-std shades.
pub fn final_adr_bootstrap_ci(
    outcomes: &[CreditOutcome],
    race: Race,
    level: f64,
    resamples: usize,
    rng: &mut eqimpact_stats::SimRng,
) -> eqimpact_stats::ConfidenceInterval {
    assert!(!outcomes.is_empty(), "bootstrap: no outcomes");
    let mut sample = Vec::new();
    for o in outcomes {
        let last = o.record.steps() - 1;
        let filtered = o.record.filtered(last);
        for i in o.race_indices(race) {
            sample.push(filtered[i]);
        }
    }
    eqimpact_stats::bootstrap_mean_ci(&sample, resamples, level, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_trials_protocol, CreditConfig, LenderKind};

    fn outcomes() -> Vec<CreditOutcome> {
        run_trials_protocol(&CreditConfig {
            users: 150,
            steps: 19,
            trials: 2,
            seed: 42,
            lender: LenderKind::Scorecard,
            ..Default::default()
        })
    }

    #[test]
    fn fig3_shapes_and_content() {
        let o = outcomes();
        let summaries = fig3_race_adr(&o);
        assert_eq!(summaries.len(), 3);
        for s in &summaries {
            assert_eq!(s.mean.len(), 19);
            assert_eq!(s.std.len(), 19);
            assert!(s.std.iter().all(|&v| v >= 0.0 || v.is_nan()));
        }
        let csv = fig3_csv(&summaries, 2002);
        assert!(csv.starts_with("year,race"));
        assert!(csv.contains("2002,BLACK ALONE"));
        assert!(csv.contains("2020,ASIAN ALONE"));
        // 3 races x 19 years + header.
        assert_eq!(csv.lines().count(), 3 * 19 + 1);
    }

    #[test]
    fn fig4_has_all_trajectories() {
        let o = outcomes();
        let series = fig4_user_adr(&o);
        assert_eq!(series.len(), 2 * 150);
        assert!(series.iter().all(|(_, t)| t.len() == 19));
        let csv = fig4_csv(&series, 2002);
        assert_eq!(csv.lines().count(), 2 * 150 * 19 + 1);
    }

    #[test]
    fn fig5_density_masses() {
        let o = outcomes();
        let hist = fig5_density(&o, 20);
        assert_eq!(hist.x_len(), 19);
        assert_eq!(hist.y_bins(), 20);
        // Every column holds all users of all trials.
        for k in 0..19 {
            assert_eq!(hist.col_total(k), 2 * 150);
        }
        let csv = fig5_csv(&hist, 2002);
        assert_eq!(csv.lines().count(), 19 * 20 + 1);
    }

    #[test]
    fn approval_series_shapes() {
        let o = outcomes();
        let rates = approval_rates_by_race(&o);
        assert_eq!(rates.len(), 3);
        for series in &rates {
            assert_eq!(series.len(), 19);
            // Warmup years approve everyone.
            assert_eq!(series[0], 1.0);
            assert_eq!(series[1], 1.0);
            for &r in series.iter() {
                assert!((0.0..=1.0).contains(&r) || r.is_nan());
            }
        }
        let csv = approval_csv(&rates, 2002);
        assert_eq!(csv.lines().count(), 3 * 19 + 1);
        assert!(csv.contains("2002,BLACK ALONE,1.000000"));
    }

    #[test]
    fn bootstrap_ci_brackets_point_estimate() {
        let o = outcomes();
        let mut rng = eqimpact_stats::SimRng::new(99);
        let ci = final_adr_bootstrap_ci(&o, Race::White, 0.9, 300, &mut rng);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.estimate >= 0.0 && ci.estimate <= 1.0);
        assert!(ci.width() < 0.2);
    }

    #[test]
    fn fig2_rows_cover_brackets() {
        let table = IncomeTable::embedded();
        let rows = fig2_income_distribution(&table, 2020);
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0].0, "under 15");
        // Shares per race sum to ~1 down the column.
        for race in 0..3 {
            let total: f64 = rows.iter().map(|(_, s)| s[race]).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
        let csv = fig2_csv(&rows);
        assert!(csv.contains("over 200"));
        assert_eq!(csv.lines().count(), 10);
    }
}
