//! The credit scenario's sweep face: off-policy candidate grids over
//! recorded credit traces (`experiments sweep credit`).
//!
//! Candidates combine the tracer's lender policies with the ADR filter
//! and a loan-approval threshold on the signal channel (signals are loan
//! amounts in $K, so `threshold=10` asks "what if only offers above
//! $10K counted as approvals?"). The checkpointed replay fast-path is
//! enabled exactly when the trace carries checkpoints **and** the
//! candidate's policy is the recorded variant — the one case where the
//! recorded model states are the states the candidate's retraining
//! would have produced.

use crate::adr::AdrFilter;
use crate::trace::{build_lender, DECISION_THRESHOLD, POLICIES};
use eqimpact_lab::{CandidateGrid, CandidateSpec, SweepEval, SweepTarget};
use eqimpact_trace::scenario::unknown_policy;
use eqimpact_trace::{evaluate_off_policy_with, OffPolicyOptions, TraceError, TraceReader};
use std::io::Read;

/// The sweep face of the credit scenario (registered next to
/// [`CreditTracer`](crate::CreditTracer) in the sweep registry).
pub struct CreditSweep;

/// The lender policies a sweep can instantiate (the tracer's list).
const POLICY_NAMES: &[&str] = &["scorecard", "uniform-exclusion", "income-multiple"];

/// The feedback filters a sweep can instantiate.
const FILTER_NAMES: &[&str] = &["adr"];

impl SweepTarget for CreditSweep {
    fn name(&self) -> &'static str {
        "credit"
    }

    fn default_grid(&self) -> CandidateGrid {
        CandidateGrid::new(
            POLICY_NAMES.iter().copied(),
            FILTER_NAMES.iter().copied(),
            [DECISION_THRESHOLD, 10.0, 25.0],
        )
    }

    fn known_policies(&self) -> &'static [&'static str] {
        POLICY_NAMES
    }

    fn known_filters(&self) -> &'static [&'static str] {
        FILTER_NAMES
    }

    fn evaluate(
        &self,
        input: &mut dyn Read,
        candidate: &CandidateSpec,
    ) -> Result<SweepEval, TraceError> {
        let reader = TraceReader::new(input)?;
        let header = reader.header().clone();
        let lender = build_lender(&candidate.policy)
            .ok_or_else(|| unknown_policy(&candidate.policy, POLICIES))?;
        let options = OffPolicyOptions {
            use_checkpoints: header.checkpoints && candidate.policy == header.variant,
        };
        let outcome = evaluate_off_policy_with(
            reader,
            lender,
            AdrFilter::new(),
            candidate.threshold,
            options,
        )?;
        Ok(SweepEval { header, outcome })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TRACE_VARIANT;
    use crate::sim::{run_trial_sunk, CreditConfig, LenderKind};
    use eqimpact_core::scenario::{Scale, TraceMeta};
    use eqimpact_trace::{TraceHeader, TraceStepSink};

    fn checkpointed_trace() -> Vec<u8> {
        let config = CreditConfig {
            users: 90,
            steps: 6,
            trials: 1,
            seed: 11,
            lender: LenderKind::Scorecard,
            ..CreditConfig::default()
        };
        let header = TraceHeader::from_meta(&TraceMeta {
            scenario: "credit".to_string(),
            variant: TRACE_VARIANT.to_string(),
            trial: 0,
            scale: Scale::Quick,
            seed: config.seed,
            shards: config.shards,
            delay: config.delay,
            policy: config.policy,
        })
        .with_checkpoints();
        let mut sink = TraceStepSink::new(Vec::new(), &header).expect("header writes");
        run_trial_sunk(&config, 0, &mut sink);
        sink.finish().expect("trace finishes")
    }

    #[test]
    fn grid_axes_match_the_known_names() {
        let grid = CreditSweep.default_grid();
        assert_eq!(grid.policies, POLICY_NAMES);
        assert_eq!(grid.filters, FILTER_NAMES);
        assert!(!grid.is_empty());
        for policy in &grid.policies {
            assert!(CreditSweep.known_policies().contains(&policy.as_str()));
        }
    }

    #[test]
    fn evaluate_reports_unknown_policies_by_name() {
        let bytes = checkpointed_trace();
        let candidate = CandidateSpec {
            index: 0,
            policy: "quikc".to_string(),
            filter: "adr".to_string(),
            threshold: 0.0,
        };
        match CreditSweep.evaluate(&mut bytes.as_slice(), &candidate) {
            Err(TraceError::UnknownPolicy { policy, .. }) => assert_eq!(policy, "quikc"),
            other => panic!("expected UnknownPolicy, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn checkpoint_fast_path_matches_the_retrained_answer() {
        // The same-learner candidate gives identical results whether it
        // restores checkpoints (policy == variant) or retrains — the
        // soundness condition the fast-path gate encodes.
        let bytes = checkpointed_trace();
        let fast = CandidateSpec {
            index: 0,
            policy: TRACE_VARIANT.to_string(),
            filter: "adr".to_string(),
            threshold: 0.0,
        };
        let eval = CreditSweep
            .evaluate(&mut bytes.as_slice(), &fast)
            .expect("sweep evaluates");
        assert!(eval.header.checkpoints);
        let slow = evaluate_off_policy_with(
            TraceReader::new(&mut bytes.as_slice()).unwrap(),
            build_lender(TRACE_VARIANT).unwrap(),
            AdrFilter::new(),
            0.0,
            OffPolicyOptions {
                use_checkpoints: false,
            },
        )
        .expect("retrained evaluation");
        assert_eq!(eval.outcome.agreement, slow.agreement);
        assert_eq!(eval.outcome.counterfactual, slow.counterfactual);
    }

    #[test]
    fn cross_policy_candidates_retrain_from_scratch() {
        // A different learner must not consume the scorecard's
        // checkpoints: the gate disables the fast-path, and the verdict
        // matches a plain retrained evaluation.
        let bytes = checkpointed_trace();
        let candidate = CandidateSpec {
            index: 1,
            policy: "uniform-exclusion".to_string(),
            filter: "adr".to_string(),
            threshold: 0.0,
        };
        let eval = CreditSweep
            .evaluate(&mut bytes.as_slice(), &candidate)
            .expect("sweep evaluates");
        let plain = evaluate_off_policy_with(
            TraceReader::new(&mut bytes.as_slice()).unwrap(),
            build_lender("uniform-exclusion").unwrap(),
            AdrFilter::new(),
            0.0,
            OffPolicyOptions {
                use_checkpoints: false,
            },
        )
        .expect("retrained evaluation");
        assert_eq!(eval.outcome.counterfactual, plain.counterfactual);
    }
}
