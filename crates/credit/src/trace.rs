//! Replay and off-policy evaluation of recorded credit traces.
//!
//! [`CreditTracer`] implements
//! [`TraceReplayer`](eqimpact_trace::TraceReplayer): it rebuilds the
//! lender named by a trace's `variant` header from its deterministic
//! initial state (the paper's parameters) together with a fresh
//! [`AdrFilter`], so a recorded credit trial replays **byte-identically**
//! without touching the census population. For off-policy evaluation it
//! swaps in one of the introduction's baseline lenders and scores it
//! against the recorded trajectory — "what access would the uniform-$50K
//! policy have granted to the households the scorecard actually saw?".

use crate::adr::AdrFilter;
use crate::lender::{IncomeMultipleLender, ScorecardLender, UniformExclusionLender};
use eqimpact_core::closed_loop::AiSystem;
use eqimpact_trace::scenario::{unknown_policy, PolicySpec, ReplaySummary, TraceReplayer};
use eqimpact_trace::{
    evaluate_off_policy, off_policy_report, OffPolicyReport, ReplayRunner, TraceError, TraceReader,
};
use std::io::Read;

/// Positive-decision threshold on the signal channel: signals are loan
/// amounts in $K, so any positive amount is an approval.
pub const DECISION_THRESHOLD: f64 = 0.0;

/// The replay face of the credit scenario (registered next to
/// [`CreditScenario`](crate::CreditScenario) in the tracer registry).
pub struct CreditTracer;

/// The alternative policies [`CreditTracer`] can evaluate.
pub(crate) const POLICIES: &[PolicySpec] = &[
    PolicySpec {
        name: "scorecard",
        description: "the paper's retrained scorecard lender (the recorded behaviour)",
    },
    PolicySpec {
        name: "uniform-exclusion",
        description: "flat-$50K offers with permanent exclusion after a default",
    },
    PolicySpec {
        name: "income-multiple",
        description: "always approve, loan sized at a multiple of income",
    },
];

/// Builds the lender a variant/policy name denotes, boxed for uniform
/// dispatch (replay and evaluation are not hot paths).
pub(crate) fn build_lender(name: &str) -> Option<Box<dyn AiSystem>> {
    match name {
        "scorecard" => Some(Box::new(ScorecardLender::paper_default())),
        "uniform-exclusion" => Some(Box::new(UniformExclusionLender::paper_default())),
        "income-multiple" => Some(Box::new(IncomeMultipleLender::new(
            crate::model::INCOME_MULTIPLE,
        ))),
        _ => None,
    }
}

impl TraceReplayer for CreditTracer {
    fn name(&self) -> &'static str {
        "credit"
    }

    fn policies(&self) -> &'static [PolicySpec] {
        POLICIES
    }

    fn replay(&self, reader: TraceReader<&mut dyn Read>) -> Result<ReplaySummary, TraceError> {
        let header = reader.header().clone();
        let lender = build_lender(&header.variant).ok_or_else(|| TraceError::UnknownVariant {
            scenario: header.scenario.clone(),
            variant: header.variant.clone(),
        })?;
        let record = ReplayRunner::new(reader, lender, AdrFilter::new()).run()?;
        Ok(ReplaySummary { header, record })
    }

    fn evaluate(
        &self,
        reader: TraceReader<&mut dyn Read>,
        policy: &str,
    ) -> Result<OffPolicyReport, TraceError> {
        let header = reader.header().clone();
        let lender = build_lender(policy).ok_or_else(|| unknown_policy(policy, POLICIES))?;
        let outcome = evaluate_off_policy(reader, lender, AdrFilter::new(), DECISION_THRESHOLD)?;
        Ok(off_policy_report(
            &outcome,
            &header,
            policy,
            DECISION_THRESHOLD,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TRACE_VARIANT;
    use crate::sim::{run_trial_sunk, CreditConfig, LenderKind};
    use eqimpact_core::recorder::RecordPolicy;
    use eqimpact_core::scenario::Scale;
    use eqimpact_trace::{TraceHeader, TraceStepSink, FORMAT_VERSION};

    fn record_trace(config: &CreditConfig, trial: usize) -> (Vec<u8>, eqimpact_core::LoopRecord) {
        record_trace_with(config, trial, false)
    }

    fn record_trace_with(
        config: &CreditConfig,
        trial: usize,
        checkpoints: bool,
    ) -> (Vec<u8>, eqimpact_core::LoopRecord) {
        let header = TraceHeader {
            version: FORMAT_VERSION,
            scenario: "credit".to_string(),
            variant: TRACE_VARIANT.to_string(),
            trial,
            scale: Scale::Quick,
            seed: config.seed,
            shards: config.shards,
            delay: config.delay,
            policy: config.policy,
            checkpoints,
        };
        let mut sink = TraceStepSink::new(Vec::new(), &header).expect("header writes");
        let outcome = run_trial_sunk(config, trial, &mut sink);
        (sink.finish().expect("trace finishes"), outcome.record)
    }

    fn small_config() -> CreditConfig {
        CreditConfig {
            users: 120,
            steps: 8,
            trials: 1,
            seed: 5,
            lender: LenderKind::Scorecard,
            delay: 1,
            shards: 1,
            policy: RecordPolicy::Full,
        }
    }

    #[test]
    fn replay_reproduces_the_record_byte_identically() {
        let config = small_config();
        let (bytes, original) = record_trace(&config, 0);
        let mut input: &[u8] = &bytes;
        let reader = TraceReader::new(&mut input as &mut dyn std::io::Read).unwrap();
        let summary = CreditTracer.replay(reader).unwrap();
        assert_eq!(summary.record, original);
        assert_eq!(summary.header.variant, TRACE_VARIANT);
        // Byte-identity in the strongest sense: serialized forms match.
        assert_eq!(
            summary.record.to_json().render(),
            original.to_json().render()
        );
    }

    #[test]
    fn checkpointed_replay_skips_retraining_byte_identically() {
        let config = small_config();
        let (bytes, original) = record_trace_with(&config, 0, true);
        let mut input: &[u8] = &bytes;
        let reader = TraceReader::new(&mut input as &mut dyn std::io::Read).unwrap();
        let mut runner = eqimpact_trace::ReplayRunner::new(
            reader,
            ScorecardLender::paper_default(),
            AdrFilter::new(),
        );
        let record = runner.run().unwrap();
        assert_eq!(record, original);
        assert!(
            runner.checkpoints_restored() > 0,
            "checkpoint fast-path never engaged"
        );
        let (lender, _) = runner.into_parts();
        assert_eq!(lender.refits(), 0, "restore must replace every retrain");

        // The same trace replays with the fast-path off too (the frames
        // are transparent), exercising the real retrain path.
        let mut input: &[u8] = &bytes;
        let reader = TraceReader::new(&mut input as &mut dyn std::io::Read).unwrap();
        let mut slow = eqimpact_trace::ReplayRunner::new(
            reader,
            ScorecardLender::paper_default(),
            AdrFilter::new(),
        )
        .use_checkpoints(false);
        assert_eq!(slow.run().unwrap(), original);
        assert_eq!(slow.checkpoints_restored(), 0);
    }

    #[test]
    fn checkpointed_off_policy_matches_retrained_evaluation() {
        // A candidate that shares the logged learner gives the same
        // verdict whether it retrains or restores the checkpoints.
        let config = small_config();
        let (bytes, _) = record_trace_with(&config, 0, true);
        let run = |use_checkpoints: bool| {
            let mut input: &[u8] = &bytes;
            let reader = TraceReader::new(&mut input as &mut dyn std::io::Read).unwrap();
            eqimpact_trace::evaluate_off_policy_with(
                reader,
                ScorecardLender::paper_default(),
                AdrFilter::new(),
                DECISION_THRESHOLD,
                eqimpact_trace::OffPolicyOptions { use_checkpoints },
            )
            .unwrap()
        };
        let fast = run(true);
        let slow = run(false);
        assert_eq!(fast.agreement, slow.agreement);
        assert_eq!(fast.counterfactual, slow.counterfactual);
    }

    #[test]
    fn off_policy_income_multiple_approves_everyone() {
        let config = small_config();
        let (bytes, _) = record_trace(&config, 0);
        let mut input: &[u8] = &bytes;
        let reader = TraceReader::new(&mut input as &mut dyn std::io::Read).unwrap();
        let report = CreditTracer.evaluate(reader, "income-multiple").unwrap();
        // The income-multiple lender always approves: positive rate 1.
        assert!((report.candidate.positive_rate - 1.0).abs() < 1e-12);
        assert_eq!(report.candidate.parity_gap, 0.0);
        assert_eq!(report.group_labels.len(), 3);
        assert!(report.agreement > 0.0 && report.agreement <= 1.0);
        assert_eq!(report.steps, config.steps);
        assert_eq!(report.users, config.users);
    }

    #[test]
    fn unknown_policy_is_a_named_error() {
        let (bytes, _) = record_trace(&small_config(), 0);
        let mut input: &[u8] = &bytes;
        let reader = TraceReader::new(&mut input as &mut dyn std::io::Read).unwrap();
        match CreditTracer.evaluate(reader, "quikc") {
            Err(TraceError::UnknownPolicy { policy, known }) => {
                assert_eq!(policy, "quikc");
                assert!(known.contains(&"income-multiple"));
            }
            other => panic!("expected UnknownPolicy, got {other:?}"),
        }
    }
}
