//! The credit-scoring case study of the paper's Sec. VII: a lender, a
//! census-sampled household population, repayment per the Gaussian
//! conditional-independence model, average default rates, and the yearly
//! scorecard retraining loop for 2002-2020.
//!
//! * [`model`] — eq. (10) state and eq. (11) repayment;
//! * [`adr`] — eq. (12) average default rates, as tracker and as the
//!   loop's feedback filter;
//! * [`lender`] — the AI-system block: the retrained scorecard lender plus
//!   the uniform-$50K and income-multiple baselines of the introduction;
//! * [`users`] — the population block over `eqimpact-census` households;
//! * [`sim`] — configuration, single runs and the 5-trial protocol;
//! * [`report`] — extraction of the Table I / Fig. 2-5 artifacts;
//! * [`scenario`] — the case study as a first-class registry
//!   [`Scenario`](eqimpact_core::scenario::Scenario) (`experiments run
//!   credit`);
//! * [`trace`] — replay and off-policy evaluation of recorded credit
//!   traces (`experiments record credit` / `experiments replay`);
//! * [`sweep`] — the counterfactual-lab sweep face: candidate grids of
//!   lenders/thresholds evaluated off-policy over recorded traces
//!   (`experiments sweep credit`).
//!
//! # Example
//!
//! ```
//! use eqimpact_credit::sim::{CreditConfig, run_trial};
//!
//! let config = CreditConfig { users: 100, ..CreditConfig::default() };
//! let outcome = run_trial(&config, 0);
//! assert_eq!(outcome.record.steps(), 19); // 2002..=2020
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adr;
pub mod certify;
pub mod lender;
pub mod model;
pub mod report;
pub mod scenario;
pub mod sim;
pub mod sweep;
pub mod trace;
pub mod users;

pub use adr::{AdrFilter, AdrTracker};
pub use certify::CreditCertify;
pub use lender::{IncomeMultipleLender, ScorecardLender, UniformExclusionLender};
pub use scenario::CreditScenario;
pub use sim::{run_trial, run_trials_protocol, CreditConfig, CreditOutcome, LenderKind};
pub use sweep::CreditSweep;
pub use trace::CreditTracer;
pub use users::CreditPopulation;
