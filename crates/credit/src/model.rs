//! Eq. (10) state and eq. (11) repayment: the Gaussian conditional
//! independence model (Rutkowski-Tarca 2015) as used in the paper.

use eqimpact_stats::dist::std_normal_cdf;
use eqimpact_stats::SimRng;

/// Basic annual living cost, $K (the paper's $10K).
pub const LIVING_COST_K: f64 = 10.0;

/// Annual mortgage rate (the paper's 2.16 % p.a.).
pub const ANNUAL_RATE: f64 = 0.0216;

/// The paper's mortgage sizing: 3.5 times annual income.
pub const INCOME_MULTIPLE: f64 = 3.5;

/// The paper's scorecard cut-off.
pub const CUTOFF: f64 = 0.4;

/// The sensitivity of the repayment probability (the paper's `F(5 x)`).
pub const REPAYMENT_SENSITIVITY: f64 = 5.0;

/// The income threshold of the visible code `1_{z ≥ 15}` ($K).
pub const INCOME_CODE_THRESHOLD_K: f64 = 15.0;

/// Eq. (10) generalized to an arbitrary loan amount `L` ($K): the portion
/// of income left after living cost and mortgage interest,
/// `x = (z − 10 − 0.0216 · L) / z`.
///
/// With `L = 3.5 z` this is exactly the paper's eq. (10).
///
/// # Panics
/// Panics for non-positive income.
pub fn state_fraction(income_k: f64, loan_k: f64) -> f64 {
    assert!(income_k > 0.0, "state_fraction: income must be positive");
    (income_k - LIVING_COST_K - ANNUAL_RATE * loan_k) / income_k
}

/// The paper's sizing `L = 3.5 z`.
pub fn income_multiple_loan(income_k: f64) -> f64 {
    INCOME_MULTIPLE * income_k
}

/// Repayment probability given the state: `Φ(5 x)` for `x > 0`, zero
/// otherwise (eq. (11)'s first branch).
pub fn repayment_probability(state: f64) -> f64 {
    if state <= 0.0 {
        0.0
    } else {
        std_normal_cdf(REPAYMENT_SENSITIVITY * state)
    }
}

/// Samples the binary repayment action `y_i(k)` of eq. (11): forced 0 when
/// no loan is offered (`loan_k <= 0`) or the state is non-positive,
/// Bernoulli(`Φ(5x)`) otherwise.
pub fn sample_repayment(income_k: f64, loan_k: f64, rng: &mut SimRng) -> f64 {
    if loan_k <= 0.0 {
        return 0.0;
    }
    let x = state_fraction(income_k, loan_k);
    if x <= 0.0 {
        return 0.0;
    }
    if rng.bernoulli(repayment_probability(x)) {
        1.0
    } else {
        0.0
    }
}

/// The visible income code `1_{z ≥ 15}`.
pub fn income_code(income_k: f64) -> f64 {
    if income_k >= INCOME_CODE_THRESHOLD_K {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_state_formula() {
        // z = 50, L = 3.5 z: x = (50 - 10 - 0.0216*175)/50 = 0.7244.
        let z = 50.0;
        let x = state_fraction(z, income_multiple_loan(z));
        assert!((x - 0.7244).abs() < 1e-10, "x = {x}");
    }

    #[test]
    fn state_negative_below_breakeven() {
        // With L = 3.5 z, x <= 0 iff z <= 10 / (1 - 0.0756) ≈ 10.818.
        let breakeven = LIVING_COST_K / (1.0 - ANNUAL_RATE * INCOME_MULTIPLE);
        let lo = breakeven - 0.01;
        let hi = breakeven + 0.01;
        assert!(state_fraction(lo, income_multiple_loan(lo)) < 0.0);
        assert!(state_fraction(hi, income_multiple_loan(hi)) > 0.0);
    }

    #[test]
    fn repayment_probability_branches() {
        assert_eq!(repayment_probability(-0.5), 0.0);
        assert_eq!(repayment_probability(0.0), 0.0);
        assert!((repayment_probability(0.2) - std_normal_cdf(1.0)).abs() < 1e-15);
        assert!(repayment_probability(0.7244) > 0.999);
    }

    #[test]
    fn forced_defaults() {
        let mut rng = SimRng::new(1);
        // No offer: never repays.
        assert_eq!(sample_repayment(50.0, 0.0, &mut rng), 0.0);
        // Income below living cost: never repays.
        assert_eq!(
            sample_repayment(8.0, income_multiple_loan(8.0), &mut rng),
            0.0
        );
    }

    #[test]
    fn high_income_almost_always_repays() {
        let mut rng = SimRng::new(2);
        let n = 5_000;
        let repaid: f64 = (0..n)
            .map(|_| sample_repayment(100.0, income_multiple_loan(100.0), &mut rng))
            .sum();
        assert!(repaid / n as f64 > 0.999);
    }

    #[test]
    fn marginal_income_defaults_often() {
        // z = 11: x ≈ 0.0154, Φ(0.077) ≈ 0.53.
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let repaid: f64 = (0..n)
            .map(|_| sample_repayment(11.0, income_multiple_loan(11.0), &mut rng))
            .sum();
        let rate = repaid / n as f64;
        assert!((rate - 0.53).abs() < 0.03, "repay rate = {rate}");
    }

    #[test]
    fn income_code_threshold() {
        assert_eq!(income_code(14.999), 0.0);
        assert_eq!(income_code(15.0), 1.0);
        assert_eq!(income_code(200.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_income_rejected() {
        state_fraction(0.0, 10.0);
    }
}
