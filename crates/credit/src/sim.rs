//! Simulation drivers: one trial and the paper's five-trial protocol.

use crate::adr::AdrFilter;
use crate::lender::{IncomeMultipleLender, ScorecardLender, UniformExclusionLender};
use crate::users::CreditPopulation;
use eqimpact_census::Race;
use eqimpact_core::closed_loop::LoopBuilder;
use eqimpact_core::recorder::{LoopRecord, RecordPolicy, StepSink};
use eqimpact_core::shard::ShardableAi;
use eqimpact_core::trials::run_trials_with;
use eqimpact_ml::scorecard::Scorecard;
use eqimpact_stats::SimRng;

/// Which lender drives the loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LenderKind {
    /// The paper's retrained scorecard (Sec. VII).
    Scorecard,
    /// The introduction's flat-$50K / permanent-exclusion baseline.
    UniformExclusion,
    /// The introduction's always-approve income-multiple baseline.
    IncomeMultiple,
}

/// Configuration of a credit-scoring experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CreditConfig {
    /// Number of households (the paper's N = 1000).
    pub users: usize,
    /// Number of yearly steps (the paper's 19: 2002..=2020).
    pub steps: usize,
    /// Number of independent trials (the paper's 5).
    pub trials: usize,
    /// Base seed; trial `t` uses stream `seed + t`.
    pub seed: u64,
    /// The lender.
    pub lender: LenderKind,
    /// Feedback delay in steps (the paper's Fig. 1 delay; 1 by default).
    pub delay: usize,
    /// Intra-trial shards: `1` runs the sequential `LoopRunner`, `n > 1`
    /// the `ShardedRunner` over `n` row shards, `0` auto-shards (one per
    /// available thread-budget lane). The record is bit-identical for
    /// every setting.
    pub shards: usize,
    /// How much telemetry to keep ([`RecordPolicy::Full`] for the paper's
    /// figures; [`RecordPolicy::Thin`] for production-scale perf runs).
    pub policy: RecordPolicy,
}

impl Default for CreditConfig {
    fn default() -> Self {
        CreditConfig {
            users: 1000,
            steps: 19,
            trials: 5,
            seed: 2002,
            lender: LenderKind::Scorecard,
            delay: 1,
            shards: 1,
            policy: RecordPolicy::Full,
        }
    }
}

/// Everything produced by one trial.
#[derive(Debug, Clone)]
pub struct CreditOutcome {
    /// Full loop telemetry; `filtered[k][i]` is `ADR_i(k)`.
    pub record: LoopRecord,
    /// Race per user (fixed at generation).
    pub races: Vec<Race>,
    /// The lender's final scorecard, when the lender is
    /// [`LenderKind::Scorecard`] and at least one refit happened.
    pub scorecard: Option<Scorecard>,
}

impl CreditOutcome {
    /// User indices of a race.
    pub fn race_indices(&self, race: Race) -> Vec<usize> {
        self.races
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == race)
            .map(|(i, _)| i)
            .collect()
    }

    /// The race-wise series `{ADR_s(k)}_k`: mean of the race's individual
    /// ADRs at each step (eq. (12)).
    pub fn race_adr_series(&self, race: Race) -> Vec<f64> {
        let members = self.race_indices(race);
        (0..self.record.steps())
            .map(|k| {
                if members.is_empty() {
                    f64::NAN
                } else {
                    let filtered = self.record.filtered(k);
                    members.iter().map(|&i| filtered[i]).sum::<f64>() / members.len() as f64
                }
            })
            .collect()
    }

    /// The individual series `{ADR_i(k)}_k`.
    pub fn user_adr_series(&self, i: usize) -> Vec<f64> {
        self.record.user_filtered(i)
    }

    /// Approval rate at step `k` (fraction of positive loan signals).
    pub fn approval_rate(&self, k: usize) -> f64 {
        let signals = self.record.signals(k);
        signals.iter().filter(|&&l| l > 0.0).count() as f64 / signals.len() as f64
    }
}

/// Runs one lender through the loop with static dispatch, returning the
/// record and the lender for post-run inspection. `config.shards == 1`
/// uses the sequential runner; any other value the sharded runner — the
/// record is bit-identical either way (see `eqimpact_core::shard`).
fn run_lender<S: ShardableAi, K: StepSink>(
    lender: S,
    population: CreditPopulation,
    config: &CreditConfig,
    loop_rng: &mut SimRng,
    sink: &mut K,
) -> (LoopRecord, S) {
    let builder = LoopBuilder::new(lender, population)
        .filter(AdrFilter::new())
        .delay(config.delay)
        .record(config.policy);
    if config.shards == 1 {
        let mut runner = builder.build();
        let record = runner.run_with_sink(config.steps, loop_rng, sink);
        let (lender, _population, _filter) = runner.into_parts();
        (record, lender)
    } else {
        let mut runner = builder.shards(config.shards).build_sharded();
        let record = runner.run_with_sink(config.steps, loop_rng, sink);
        let (lender, _population, _filter) = runner.into_parts();
        (record, lender)
    }
}

/// Runs one trial of the configured experiment. Deterministic in
/// `(config, trial_index)`.
///
/// The loop is statically dispatched per lender kind — no boxing on the
/// hot path.
pub fn run_trial(config: &CreditConfig, trial_index: usize) -> CreditOutcome {
    run_trial_sunk(config, trial_index, &mut ())
}

/// [`run_trial`] with a [`StepSink`] observing the loop's raw telemetry
/// — the entry point trace recording goes through. The sink first
/// receives the race metadata (labels in [`Race::ALL`] order, one code
/// per user), then one call per step.
pub fn run_trial_sunk<K: StepSink>(
    config: &CreditConfig,
    trial_index: usize,
    sink: &mut K,
) -> CreditOutcome {
    assert!(config.users > 0, "run_trial: zero users");
    assert!(config.steps > 0, "run_trial: zero steps");
    let rng = SimRng::new(config.seed.wrapping_add(trial_index as u64));
    let mut pop_rng = rng.split(1);
    let mut loop_rng = rng.split(2);

    let population = CreditPopulation::generate(config.users, &mut pop_rng);
    let races = population.races();
    let labels: Vec<&str> = Race::ALL.iter().map(|r| r.label()).collect();
    let codes: Vec<u32> = races.iter().map(|r| r.index() as u32).collect();
    sink.on_groups(&labels, &codes);

    let (record, scorecard) = match config.lender {
        LenderKind::Scorecard => {
            let (record, lender) = run_lender(
                ScorecardLender::paper_default(),
                population,
                config,
                &mut loop_rng,
                sink,
            );
            (record, lender.scorecard())
        }
        LenderKind::UniformExclusion => {
            let (record, _lender) = run_lender(
                UniformExclusionLender::paper_default(),
                population,
                config,
                &mut loop_rng,
                sink,
            );
            (record, None)
        }
        LenderKind::IncomeMultiple => {
            let (record, _lender) = run_lender(
                IncomeMultipleLender::new(crate::model::INCOME_MULTIPLE),
                population,
                config,
                &mut loop_rng,
                sink,
            );
            (record, None)
        }
    };

    CreditOutcome {
        record,
        races,
        scorecard,
    }
}

/// Runs the full multi-trial protocol in parallel (the paper's five trials
/// with a fresh batch of users each), striped by
/// [`eqimpact_core::trials::run_trials_with`] over worker threads leased
/// from the process-wide [`eqimpact_core::pool::ThreadBudget`]. Trial
/// striping and intra-trial sharding ([`CreditConfig::shards`]) lease
/// from the same budget, so `trials × shards` can never oversubscribe
/// the host: when the trial stripes take every lane, each trial's
/// sharded sweep runs sequentially on its own lane.
pub fn run_trials_protocol(config: &CreditConfig) -> Vec<CreditOutcome> {
    assert!(config.trials > 0, "run_trials_protocol: zero trials");
    run_trials_with(config.trials, |t| run_trial(config, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(lender: LenderKind) -> CreditConfig {
        CreditConfig {
            users: 200,
            steps: 19,
            trials: 2,
            seed: 7,
            lender,
            ..Default::default()
        }
    }

    #[test]
    fn trial_is_deterministic() {
        let config = small_config(LenderKind::Scorecard);
        let a = run_trial(&config, 0);
        let b = run_trial(&config, 0);
        assert_eq!(a.record, b.record);
        assert_eq!(a.races, b.races);
    }

    #[test]
    fn trials_differ_across_indices() {
        let config = small_config(LenderKind::Scorecard);
        let a = run_trial(&config, 0);
        let b = run_trial(&config, 1);
        assert_ne!(a.record, b.record);
    }

    #[test]
    fn warmup_years_approve_everyone() {
        let config = small_config(LenderKind::Scorecard);
        let outcome = run_trial(&config, 0);
        assert_eq!(outcome.approval_rate(0), 1.0);
        assert_eq!(outcome.approval_rate(1), 1.0);
    }

    #[test]
    fn scorecard_emerges_with_paper_shape() {
        let config = CreditConfig {
            users: 1000,
            ..small_config(LenderKind::Scorecard)
        };
        let outcome = run_trial(&config, 0);
        let card = outcome.scorecard.expect("scorecard fitted");
        // Table I shape: negative history points, positive income points.
        assert!(
            card.rows[0].points_per_unit < 0.0,
            "history points = {}",
            card.rows[0].points_per_unit
        );
        assert!(
            card.rows[1].points_per_unit > 0.0,
            "income points = {}",
            card.rows[1].points_per_unit
        );
    }

    #[test]
    fn adr_series_dwindle_like_fig3() {
        let config = CreditConfig {
            users: 1000,
            ..small_config(LenderKind::Scorecard)
        };
        let outcome = run_trial(&config, 0);
        for race in Race::ALL {
            let series = outcome.race_adr_series(race);
            assert_eq!(series.len(), 19);
            let final_adr = *series.last().unwrap();
            // All races settle at a low default level by 2020.
            assert!(final_adr < 0.15, "{race}: final ADR = {final_adr}");
        }
    }

    #[test]
    fn uniform_lender_excludes_over_time() {
        let config = small_config(LenderKind::UniformExclusion);
        let outcome = run_trial(&config, 0);
        // Approval rate is 1 at the start and strictly lower at the end.
        assert_eq!(outcome.approval_rate(0), 1.0);
        assert!(outcome.approval_rate(18) < 1.0);
    }

    #[test]
    fn income_multiple_lender_always_approves() {
        let config = small_config(LenderKind::IncomeMultiple);
        let outcome = run_trial(&config, 0);
        for k in 0..19 {
            assert_eq!(outcome.approval_rate(k), 1.0, "step {k}");
        }
    }

    #[test]
    fn sharded_trials_are_bit_identical_for_every_lender() {
        // The tentpole guarantee on the credit scenario: any shard count
        // (including auto) reproduces the sequential record exactly.
        for lender in [
            LenderKind::Scorecard,
            LenderKind::UniformExclusion,
            LenderKind::IncomeMultiple,
        ] {
            let config = CreditConfig {
                users: 150,
                steps: 8,
                ..small_config(lender)
            };
            let reference = run_trial(&config, 0);
            for shards in [2usize, 8, 0] {
                let config_n = CreditConfig { shards, ..config };
                let outcome = run_trial(&config_n, 0);
                assert_eq!(
                    outcome.record, reference.record,
                    "{lender:?} x {shards} shards"
                );
                assert_eq!(outcome.races, reference.races);
            }
        }
    }

    #[test]
    fn thin_policy_flows_through_the_protocol() {
        let config = CreditConfig {
            users: 120,
            steps: 6,
            policy: RecordPolicy::Thin,
            shards: 2,
            ..small_config(LenderKind::IncomeMultiple)
        };
        let outcome = run_trial(&config, 0);
        assert_eq!(outcome.record.policy(), RecordPolicy::Thin);
        assert_eq!(outcome.record.mean_actions().len(), 6);
    }

    /// A hand-built outcome: `steps` recorded steps over `races.len()`
    /// users, signal 1.0 / action alternating, filtered = step index.
    fn synthetic_outcome(races: Vec<Race>, steps: usize) -> CreditOutcome {
        let n = races.len();
        let mut record = eqimpact_core::recorder::LoopRecord::new(n);
        for k in 0..steps {
            let signals = vec![if k % 2 == 0 { 1.0 } else { 0.0 }; n];
            let actions = vec![1.0; n];
            let filtered = vec![k as f64; n];
            record.push_step(&signals, &actions, &filtered);
        }
        CreditOutcome {
            record,
            races,
            scorecard: None,
        }
    }

    #[test]
    fn accessors_on_zero_step_record() {
        // An outcome whose record holds no steps (e.g. a trial that was
        // never run): the per-race series are empty, not panicking.
        let outcome = synthetic_outcome(vec![Race::White, Race::Black], 0);
        for race in Race::ALL {
            assert!(outcome.race_adr_series(race).is_empty(), "{race}");
        }
        assert!(outcome.user_adr_series(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn approval_rate_on_zero_step_record_panics() {
        // With no recorded steps there is no step 0 to read.
        synthetic_outcome(vec![Race::White], 0).approval_rate(0);
    }

    #[test]
    fn accessors_on_single_user_outcome() {
        let outcome = synthetic_outcome(vec![Race::Asian], 3);
        // The lone user's race series equals their individual series.
        assert_eq!(outcome.race_adr_series(Race::Asian), vec![0.0, 1.0, 2.0]);
        assert_eq!(outcome.user_adr_series(0), vec![0.0, 1.0, 2.0]);
        // Races with no members yield NaN at every step, same length.
        let empty_race = outcome.race_adr_series(Race::Black);
        assert_eq!(empty_race.len(), 3);
        assert!(empty_race.iter().all(|v| v.is_nan()));
        assert!(outcome.race_indices(Race::Black).is_empty());
        // Approval follows the alternating signals exactly.
        assert_eq!(outcome.approval_rate(0), 1.0);
        assert_eq!(outcome.approval_rate(1), 0.0);
        assert_eq!(outcome.approval_rate(2), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn approval_rate_out_of_range_step_panics() {
        let outcome = synthetic_outcome(vec![Race::White], 4);
        outcome.approval_rate(4); // steps are 0..=3
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn user_adr_series_out_of_range_user_panics() {
        let outcome = synthetic_outcome(vec![Race::White], 2);
        outcome.user_adr_series(1); // only user 0 exists
    }

    #[test]
    fn protocol_runs_all_trials() {
        let config = small_config(LenderKind::Scorecard);
        let outcomes = run_trials_protocol(&config);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].record.steps(), 19);
        // Deterministic: re-running matches.
        let again = run_trials_protocol(&config);
        assert_eq!(outcomes[0].record, again[0].record);
        assert_eq!(outcomes[1].record, again[1].record);
    }
}
