//! The Sec. VII credit case study as a first-class
//! [`Scenario`](eqimpact_core::scenario::Scenario).
//!
//! [`CreditScenario`] plugs the five-trial credit protocol
//! ([`run_trial`]) into the generic scenario driver: trial striping,
//! intra-trial sharding and artifact writing all come from
//! `eqimpact_core::scenario`; this module only declares the paper/quick
//! configurations and renders the paper's artifacts (Table I, Figs. 2-5)
//! from the trial outcomes.

use crate::report;
use crate::sim::{run_trial, run_trial_sunk, CreditConfig, CreditOutcome, LenderKind};
use eqimpact_census::{IncomeTable, FIRST_YEAR};
use eqimpact_core::scenario::{
    Artifact, ArtifactSpec, Scale, Scenario, ScenarioConfig, ScenarioReport, TraceMeta,
};
use eqimpact_stats::plot::{AsciiChart, Series};
use eqimpact_stats::ToJson;

/// The credit configuration of a scale: the paper's N = 1000 households
/// and 5 trials, or the CI-friendly 400 x 2 quick shape.
pub fn scale_config(scale: Scale, lender: LenderKind) -> CreditConfig {
    CreditConfig {
        users: scale.pick(1000, 400),
        trials: scale.pick(5, 2),
        lender,
        ..CreditConfig::default()
    }
}

/// The credit case study as a registry scenario: census households, the
/// retrained scorecard lender and the ADR feedback filter, rendered into
/// the paper's Table I and Figs. 2-5.
pub struct CreditScenario;

/// The trace-header variant name of the scenario's recorded loop.
pub const TRACE_VARIANT: &str = "scorecard";

/// The per-trial [`CreditConfig`] a scenario config resolves to (scale
/// shapes, shard count, the scenario's record policy, and the seed
/// override).
pub fn trial_config(config: &ScenarioConfig) -> CreditConfig {
    let base = scale_config(config.scale, LenderKind::Scorecard);
    CreditConfig {
        shards: config.shards,
        policy: Scenario::record_policy(&CreditScenario, config.scale),
        seed: config.seed.unwrap_or(base.seed),
        ..base
    }
}

/// The artifacts [`CreditScenario`] renders.
const ARTIFACTS: &[ArtifactSpec] = &[
    ArtifactSpec {
        name: "table1",
        description: "Table I: the learned scorecard vs the paper's reference",
    },
    ArtifactSpec {
        name: "fig2",
        description: "Fig. 2: 2020 income distribution by race",
    },
    ArtifactSpec {
        name: "fig3",
        description: "Fig. 3: race-wise ADR series (mean +/- std across trials)",
    },
    ArtifactSpec {
        name: "fig4",
        description: "Fig. 4: every per-user ADR trajectory",
    },
    ArtifactSpec {
        name: "fig5",
        description: "Fig. 5: ADR density by year",
    },
];

impl Scenario for CreditScenario {
    type Outcome = CreditOutcome;

    fn name(&self) -> &'static str {
        "credit"
    }

    fn description(&self) -> &'static str {
        "Sec. VII credit loop: census households, retrained scorecard lender, ADR filter"
    }

    fn artifacts(&self) -> &'static [ArtifactSpec] {
        ARTIFACTS
    }

    fn trials(&self, scale: Scale) -> usize {
        scale_config(scale, LenderKind::Scorecard).trials
    }

    fn trials_needed(&self, config: &ScenarioConfig) -> usize {
        // fig2 is a pure census-table read; a request for it alone must
        // not pay for the closed loop.
        match &config.wanted {
            Some(wanted) if wanted.iter().all(|name| name == "fig2") => 0,
            _ => self.trials(config.scale),
        }
    }

    fn supports_tracing(&self) -> bool {
        true
    }

    fn run_trial(&self, config: &ScenarioConfig, trial: usize) -> CreditOutcome {
        let credit = trial_config(config);
        match &config.trace {
            None => run_trial(&credit, trial),
            Some(factory) => {
                let meta = TraceMeta {
                    scenario: "credit".to_string(),
                    variant: TRACE_VARIANT.to_string(),
                    trial,
                    scale: config.scale,
                    seed: credit.seed,
                    shards: credit.shards,
                    delay: credit.delay,
                    policy: credit.policy,
                };
                let mut sink = factory.sink(&meta);
                run_trial_sunk(&credit, trial, &mut sink)
            }
        }
    }

    fn render(&self, config: &ScenarioConfig, outcomes: &[CreditOutcome]) -> ScenarioReport {
        let mut report = ScenarioReport::default();
        report.summary.push(format!(
            "effective base seed: {} (trial t uses seed + t)",
            trial_config(config).seed
        ));
        if config.wants("table1") {
            render_table1(outcomes, &mut report);
        }
        if config.wants("fig2") {
            render_fig2(&mut report);
        }
        if config.wants("fig3") {
            render_fig3(outcomes, &mut report);
        }
        if config.wants("fig4") {
            render_fig4(outcomes, &mut report);
        }
        if config.wants("fig5") {
            render_fig5(outcomes, &mut report);
        }
        report
    }
}

fn render_table1(outcomes: &[CreditOutcome], out: &mut ScenarioReport) {
    let Some(card) = outcomes.iter().find_map(|o| o.scorecard.clone()) else {
        out.summary
            .push("table1: no scorecard was fitted (all refits failed)".to_string());
        return;
    };
    let t1 = report::Table1Scorecard::from_scorecard(&card);
    out.summary.push(format!(
        "Table I — learned scorecard: History {:+.3} (paper {:+.2}), Income {:+.3} (paper {:+.2}), base {:+.3}",
        t1.history_points, t1.paper_reference.0, t1.income_points, t1.paper_reference.1, t1.base_points
    ));
    out.summary.push(format!(
        "  worked example (ADR 0.1, income>15K): {:.3} (paper: 4.953)",
        t1.example_score
    ));
    out.artifacts.push(Artifact {
        name: "table1",
        file: "table1_scorecard.json".to_string(),
        contents: t1.to_json().render_pretty(),
    });
}

fn render_fig2(out: &mut ScenarioReport) {
    let rows = report::fig2_income_distribution(&IncomeTable::embedded(), 2020);
    out.summary
        .push(format!("Fig. 2 — {} income brackets by race", rows.len()));
    out.artifacts.push(Artifact {
        name: "fig2",
        file: "fig2_income_distribution.csv".to_string(),
        contents: report::fig2_csv(&rows),
    });
}

fn render_fig3(outcomes: &[CreditOutcome], out: &mut ScenarioReport) {
    let series = report::fig3_race_adr(outcomes);
    out.summary
        .push("Fig. 3 — final race-wise ADR (mean ± std across trials):".to_string());
    for s in &series {
        out.summary.push(format!(
            "  {:<12} {:.4} ± {:.4}",
            s.race,
            s.mean.last().copied().unwrap_or(f64::NAN),
            s.std.last().copied().unwrap_or(f64::NAN)
        ));
    }
    let glyphs = ['B', 'W', 'A'];
    let mut chart = AsciiChart::new(57, 12);
    for (s, &g) in series.iter().zip(&glyphs) {
        chart = chart.series(Series::new(s.race.clone(), s.mean.clone(), g));
    }
    out.summary
        .extend(chart.render().lines().map(|l| format!("  {l}")));
    out.artifacts.push(Artifact {
        name: "fig3",
        file: "fig3_race_adr.csv".to_string(),
        contents: report::fig3_csv(&series, FIRST_YEAR),
    });
}

fn render_fig4(outcomes: &[CreditOutcome], out: &mut ScenarioReport) {
    let series = report::fig4_user_adr(outcomes);
    out.summary.push(format!(
        "Fig. 4 — {} user ADR trajectories recorded",
        series.len()
    ));
    out.artifacts.push(Artifact {
        name: "fig4",
        file: "fig4_user_adr.csv".to_string(),
        contents: report::fig4_csv(&series, FIRST_YEAR),
    });
}

fn render_fig5(outcomes: &[CreditOutcome], out: &mut ScenarioReport) {
    let hist = report::fig5_density(outcomes, 25);
    out.summary
        .push("Fig. 5 — ADR density by year (dark = dense):".to_string());
    out.summary
        .extend(hist.to_ascii().lines().map(|l| format!("  |{l}|")));
    out.artifacts.push(Artifact {
        name: "fig5",
        file: "fig5_adr_density.csv".to_string(),
        contents: report::fig5_csv(&hist, FIRST_YEAR),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqimpact_core::scenario::{run_scenario, DynScenario};

    #[test]
    fn scale_config_matches_protocol_shapes() {
        let paper = scale_config(Scale::Paper, LenderKind::Scorecard);
        assert_eq!((paper.users, paper.trials), (1000, 5));
        let quick = scale_config(Scale::Quick, LenderKind::IncomeMultiple);
        assert_eq!((quick.users, quick.trials), (400, 2));
        assert_eq!(quick.lender, LenderKind::IncomeMultiple);
    }

    #[test]
    fn registry_metadata_is_complete() {
        let s: &dyn DynScenario = &CreditScenario;
        assert_eq!(s.name(), "credit");
        assert!(s.supports_sharding());
        let names: Vec<&str> = s.artifacts().iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["table1", "fig2", "fig3", "fig4", "fig5"]);
    }

    #[test]
    fn fig2_renders_without_running_the_loop() {
        // fig2 is a pure table read: selecting only it skips the trial
        // loop entirely (trials_needed = 0) yet still renders.
        let config = ScenarioConfig::new(Scale::Quick).with_artifacts(["fig2"]);
        assert_eq!(Scenario::trials_needed(&CreditScenario, &config), 0);
        assert_eq!(
            Scenario::trials_needed(&CreditScenario, &ScenarioConfig::new(Scale::Quick)),
            2
        );
        let report = run_scenario(&CreditScenario, &config).unwrap();
        assert_eq!(report.artifacts.len(), 1);
        assert!(report.artifacts[0].contents.starts_with("bracket,"));
    }

    #[test]
    fn quick_run_produces_all_artifacts() {
        let report = run_scenario(&CreditScenario, &ScenarioConfig::new(Scale::Quick)).unwrap();
        let names: Vec<&str> = report.artifacts.iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["table1", "fig2", "fig3", "fig4", "fig5"]);
        assert!(report
            .artifacts
            .iter()
            .all(|a| !a.contents.is_empty() && !a.file.is_empty()));
        // Fig. 3's CSV covers 3 races x 19 years + header.
        let fig3 = &report.artifacts[2];
        assert_eq!(fig3.contents.lines().count(), 3 * 19 + 1);
    }
}
