//! The lender: three implementations of the loop's AI-system block.
//!
//! * [`ScorecardLender`] — the paper's Sec. VII protocol: approve everyone
//!   for the first two years, then retrain a logistic scorecard each year
//!   on `(ADR_i(k−1), 1_{z≥15})` and decide by cut-off;
//! * [`UniformExclusionLender`] — the introduction's "most equal
//!   treatment" baseline: a flat $50K to everyone who has never defaulted,
//!   permanent exclusion afterwards;
//! * [`IncomeMultipleLender`] — the introduction's differentiated
//!   baseline: always approve, size the loan at a multiple of income.
//!
//! The broadcast signal `π(k, i)` is the offered loan amount in $K, with
//! `0` meaning denial. Visible features per user are
//! `[income_code, income]`: the scorecard only ever *scores* on the code
//! (and the default history), while the raw income is used solely to size
//! the 3.5x mortgage, as in the paper.

use crate::model;
use eqimpact_core::checkpoint::ModelCheckpoint;
use eqimpact_core::closed_loop::{AiSystem, Feedback};
use eqimpact_core::features::FeatureMatrix;
use eqimpact_core::shard::{ColsView, ShardableAi};
use eqimpact_ml::logistic::{LogisticModel, LogisticRegression};
use eqimpact_ml::scorecard::Scorecard;

/// Index of the income code in the visible feature rows.
pub const VISIBLE_INCOME_CODE: usize = 0;

/// Index of the raw income ($K) in the visible feature rows.
pub const VISIBLE_INCOME_K: usize = 1;

/// The paper's retrained scorecard lender.
pub struct ScorecardLender {
    /// Steps (years) during which everyone is approved before the first
    /// scorecard exists (the paper uses 2).
    warmup_steps: usize,
    /// Scorecard decision cut-off (the paper's 0.4).
    cutoff: f64,
    /// Loan sizing multiple (the paper's 3.5).
    multiple: f64,
    fitter: LogisticRegression,
    /// `ADR_i(k−1)` as known to the lender (from the last feedback).
    prev_adr: Vec<f64>,
    /// Accumulated training rows `(adr_prev, income_code)`, stored flat.
    train_rows: FeatureMatrix,
    /// Accumulated labels `y_i(j)` (offered users only).
    train_labels: Vec<f64>,
    /// The current model, if fitted.
    model: Option<LogisticModel>,
    /// Refits performed.
    refits: usize,
}

impl ScorecardLender {
    /// Creates the lender with the paper's parameters.
    pub fn paper_default() -> Self {
        ScorecardLender::new(2, model::CUTOFF, model::INCOME_MULTIPLE)
    }

    /// Creates a lender with explicit warmup, cut-off and sizing multiple.
    pub fn new(warmup_steps: usize, cutoff: f64, multiple: f64) -> Self {
        ScorecardLender {
            warmup_steps,
            cutoff,
            multiple,
            fitter: LogisticRegression::default(),
            prev_adr: Vec::new(),
            train_rows: FeatureMatrix::new(2),
            train_labels: Vec::new(),
            model: None,
            refits: 0,
        }
    }

    /// The current model, if any retraining has happened.
    pub fn model(&self) -> Option<&LogisticModel> {
        self.model.as_ref()
    }

    /// The current scorecard (factor order: History = ADR, Income = code).
    pub fn scorecard(&self) -> Option<Scorecard> {
        self.model
            .as_ref()
            .map(|m| Scorecard::from_model(m, &["History", "Income"], self.cutoff))
    }

    /// Number of refits performed.
    pub fn refits(&self) -> usize {
        self.refits
    }

    /// Accumulated training-set size.
    pub fn training_size(&self) -> usize {
        self.train_labels.len()
    }
}

impl AiSystem for ScorecardLender {
    fn signals_into(&mut self, k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        // A reused lender facing a differently sized population would
        // otherwise read another population's ADRs until the first
        // retrain resizes the state.
        if self.prev_adr.len() != visible.row_count() {
            self.prev_adr = vec![0.0; visible.row_count()];
        }
        self.signals_full(k, visible, out);
    }

    fn retrain(&mut self, _k: usize, feedback: &Feedback) {
        // Training rows pair the lender's *previous* knowledge of ADR with
        // this step's income code and repayment outcome, offered users only.
        if self.prev_adr.len() != feedback.actions.len() {
            self.prev_adr = vec![0.0; feedback.actions.len()];
        }
        let code = feedback.visible.col(VISIBLE_INCOME_CODE);
        for (i, &action) in feedback.actions.iter().enumerate() {
            if feedback.signals[i] > 0.0 {
                self.train_rows.push_row(&[self.prev_adr[i], code[i]]);
                self.train_labels.push(action);
            }
        }
        // The filter's per-user output is ADR_i up to the feedback step —
        // which is exactly ADR_i(k−1) at the next decision.
        self.prev_adr.clone_from(&feedback.per_user);

        if !self.train_labels.is_empty() {
            let data = eqimpact_ml::Dataset::from_columns(
                &self.train_rows.col_slices(),
                &self.train_labels,
            )
            .expect("rows built consistently");
            if let Ok(model) = self.fitter.fit(&data) {
                self.model = Some(model);
                self.refits += 1;
            }
        }
    }

    fn checkpoint_into(&self, out: &mut ModelCheckpoint) -> bool {
        out.push_field("prev_adr", &self.prev_adr);
        if let Some(model) = &self.model {
            out.push_scalar("model.intercept", model.intercept);
            out.push_field("model.coefficients", &model.coefficients);
            out.push_scalar("model.iterations", model.iterations as f64);
            out.push_scalar("model.converged", if model.converged { 1.0 } else { 0.0 });
        }
        true
    }

    fn restore_checkpoint(&mut self, checkpoint: &ModelCheckpoint) -> bool {
        let Some(prev_adr) = checkpoint.field("prev_adr") else {
            return false;
        };
        self.prev_adr.clear();
        self.prev_adr.extend_from_slice(prev_adr);
        // The model is present exactly when its intercept was captured;
        // the training set stays untouched — decisions never read it.
        self.model = checkpoint
            .scalar("model.intercept")
            .map(|intercept| LogisticModel {
                intercept,
                coefficients: checkpoint
                    .field("model.coefficients")
                    .unwrap_or(&[])
                    .to_vec(),
                iterations: checkpoint.scalar("model.iterations").unwrap_or(0.0) as usize,
                converged: checkpoint.scalar("model.converged") == Some(1.0),
            });
        true
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl ShardableAi for ScorecardLender {
    fn signals_batch(&self, k: usize, visible: &ColsView<'_>, out: &mut [f64]) {
        // Sized offers for everyone first; the scorecard then zeroes the
        // denials in place.
        for (o, &income) in out.iter_mut().zip(visible.col(VISIBLE_INCOME_K)) {
            *o = self.multiple * income;
        }
        if k < self.warmup_steps {
            return;
        }
        let Some(m) = &self.model else {
            return; // no scorecard yet: keep approving
        };
        // Users beyond the last feedback carry a clean history (ADR 0),
        // matching the retrain sizing.
        let prev: Vec<f64> = visible
            .rows()
            .map(|i| self.prev_adr.get(i).copied().unwrap_or(0.0))
            .collect();
        let mut scores = vec![0.0; out.len()];
        m.linear_scores_into(&[&prev, visible.col(VISIBLE_INCOME_CODE)], &mut scores);
        for (o, &s) in out.iter_mut().zip(&scores) {
            if s < self.cutoff {
                *o = 0.0;
            }
        }
    }
}

/// The introduction's uniform policy: a flat loan to anyone who has never
/// defaulted, permanent denial afterwards. Maximal equal treatment,
/// failing equal impact.
pub struct UniformExclusionLender {
    /// The flat loan amount ($K), the introduction's $50K.
    pub amount_k: f64,
    /// Lender-side memory of who has ever defaulted.
    defaulted: Vec<bool>,
}

impl UniformExclusionLender {
    /// Creates the lender with the introduction's $50K amount.
    pub fn paper_default() -> Self {
        UniformExclusionLender::new(50.0)
    }

    /// Creates the lender with an explicit amount.
    pub fn new(amount_k: f64) -> Self {
        UniformExclusionLender {
            amount_k,
            defaulted: Vec::new(),
        }
    }

    /// Number of users currently excluded.
    pub fn excluded_count(&self) -> usize {
        self.defaulted.iter().filter(|&&d| d).count()
    }
}

impl AiSystem for UniformExclusionLender {
    fn signals_into(&mut self, k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        // See ScorecardLender::signals_into: drop stale per-user state
        // when the population size changed between runs.
        if self.defaulted.len() != visible.row_count() {
            self.defaulted = vec![false; visible.row_count()];
        }
        self.signals_full(k, visible, out);
    }

    fn retrain(&mut self, _k: usize, feedback: &Feedback) {
        if self.defaulted.len() != feedback.actions.len() {
            self.defaulted = vec![false; feedback.actions.len()];
        }
        for i in 0..feedback.actions.len() {
            if feedback.signals[i] > 0.0 && feedback.actions[i] == 0.0 {
                self.defaulted[i] = true;
            }
        }
    }

    fn checkpoint_into(&self, out: &mut ModelCheckpoint) -> bool {
        out.field_mut("defaulted")
            .extend(self.defaulted.iter().map(|&d| if d { 1.0 } else { 0.0 }));
        true
    }

    fn restore_checkpoint(&mut self, checkpoint: &ModelCheckpoint) -> bool {
        let Some(defaulted) = checkpoint.field("defaulted") else {
            return false;
        };
        self.defaulted.clear();
        self.defaulted.extend(defaulted.iter().map(|&d| d != 0.0));
        true
    }
}

impl ShardableAi for UniformExclusionLender {
    fn signals_batch(&self, _k: usize, visible: &ColsView<'_>, out: &mut [f64]) {
        for (o, i) in out.iter_mut().zip(visible.rows()) {
            // Users beyond the last feedback have never defaulted.
            let defaulted = self.defaulted.get(i).copied().unwrap_or(false);
            *o = if defaulted { 0.0 } else { self.amount_k };
        }
    }
}

/// The introduction's differentiated policy: always approve, size the loan
/// at a multiple of income. Unequal treatment, aiming for equal impact.
pub struct IncomeMultipleLender {
    /// The sizing multiple (the introduction's "three times the annual
    /// salary"; the Sec. VII experiments use 3.5).
    pub multiple: f64,
}

impl IncomeMultipleLender {
    /// Creates the lender.
    pub fn new(multiple: f64) -> Self {
        IncomeMultipleLender { multiple }
    }
}

impl AiSystem for IncomeMultipleLender {
    fn signals_into(&mut self, k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        self.signals_full(k, visible, out);
    }

    fn retrain(&mut self, _k: usize, _feedback: &Feedback) {}
}

impl ShardableAi for IncomeMultipleLender {
    fn signals_batch(&self, _k: usize, visible: &ColsView<'_>, out: &mut [f64]) {
        for (o, &income) in out.iter_mut().zip(visible.col(VISIBLE_INCOME_K)) {
            *o = self.multiple * income;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn visible_row(income: f64) -> Vec<f64> {
        vec![model::income_code(income), income]
    }

    fn visible_matrix(incomes: &[f64]) -> FeatureMatrix {
        let rows: Vec<Vec<f64>> = incomes.iter().map(|&i| visible_row(i)).collect();
        FeatureMatrix::from_nested(&rows)
    }

    #[test]
    fn scorecard_lender_warmup_approves_everyone() {
        let mut lender = ScorecardLender::paper_default();
        let visible = visible_matrix(&[8.0, 60.0]);
        let signals = lender.signals(0, &visible);
        assert_eq!(signals, vec![28.0, 210.0]);
        let signals1 = lender.signals(1, &visible);
        assert_eq!(signals1.len(), 2);
        assert!(signals1.iter().all(|&l| l > 0.0));
        assert!(lender.model().is_none());
        assert!(lender.scorecard().is_none());
    }

    #[test]
    fn scorecard_lender_learns_and_denies() {
        let mut lender = ScorecardLender::paper_default();
        // Feed it a synthetic history where low-code users default and
        // high-code users repay, plus ADR contrast.
        let n = 400;
        let incomes: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 10.0 } else { 60.0 })
            .collect();
        let visible = visible_matrix(&incomes);
        let signals: Vec<f64> = visible
            .col(VISIBLE_INCOME_K)
            .iter()
            .map(|&v| 3.5 * v)
            .collect();
        let actions: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 0.0 } else { 1.0 }).collect();
        let per_user: Vec<f64> = actions.iter().map(|&y| 1.0 - y).collect();
        let feedback = Feedback {
            step: 0,
            per_user,
            aggregate: 0.5,
            visible: visible.clone(),
            signals,
            actions,
        };
        lender.retrain(0, &feedback);
        assert_eq!(lender.refits(), 1);
        assert_eq!(lender.training_size(), n);
        let model = lender.model().unwrap();
        // Income code raises the score (positive coefficient).
        assert!(
            model.coefficients[1] > 0.0,
            "income coef = {}",
            model.coefficients[1]
        );

        // Decisions at k >= warmup use the scorecard: a defaulted low-income
        // user is denied, a clean high-income user approved.
        let signals = lender.signals(2, &visible);
        assert_eq!(signals[0], 0.0, "defaulted low-income user still approved");
        assert!(signals[1] > 0.0, "clean high-income user denied");
        // The scorecard table renders.
        let card = lender.scorecard().unwrap();
        assert!(card.to_table().contains("History"));
    }

    #[test]
    fn uniform_lender_excludes_after_default() {
        let mut lender = UniformExclusionLender::paper_default();
        let visible = visible_matrix(&[12.0, 80.0]);
        let s0 = lender.signals(0, &visible);
        assert_eq!(s0, vec![50.0, 50.0]);
        // User 0 defaults.
        let feedback = Feedback {
            step: 0,
            per_user: vec![1.0, 0.0],
            aggregate: 0.5,
            visible: visible.clone(),
            signals: s0,
            actions: vec![0.0, 1.0],
        };
        lender.retrain(0, &feedback);
        assert_eq!(lender.excluded_count(), 1);
        let s1 = lender.signals(1, &visible);
        assert_eq!(s1, vec![0.0, 50.0]);
        // Exclusion is permanent: another clean round changes nothing.
        let feedback2 = Feedback {
            step: 1,
            per_user: vec![1.0, 0.0],
            aggregate: 0.0,
            visible: visible.clone(),
            signals: s1.clone(),
            actions: vec![0.0, 1.0],
        };
        lender.retrain(1, &feedback2);
        assert_eq!(lender.signals(2, &visible), vec![0.0, 50.0]);
    }

    #[test]
    fn income_multiple_lender_always_approves() {
        let mut lender = IncomeMultipleLender::new(3.0);
        let visible = visible_matrix(&[10.0, 100.0]);
        assert_eq!(lender.signals(0, &visible), vec![30.0, 300.0]);
        // Retrain is a no-op.
        let feedback = Feedback {
            step: 0,
            per_user: vec![0.0, 0.0],
            aggregate: 0.0,
            visible: visible.clone(),
            signals: vec![30.0, 300.0],
            actions: vec![1.0, 1.0],
        };
        lender.retrain(0, &feedback);
        assert_eq!(lender.signals(5, &visible), vec![30.0, 300.0]);
    }
}
