//! The credit scenario's certification face: maps recorded credit traces
//! onto the certification plane (`experiments certify credit`).
//!
//! The certified state channel is the per-user ADR (adverse-decision
//! ratio), which the `AdrFilter` keeps in `[0, 1]` with a clean history
//! at `0.0`. The model dynamics come from the scorecard's checkpoint
//! fields (`model.intercept` + `model.coefficients`); `prev_adr` is
//! deliberately excluded — it is per-user state, not model state, and
//! would blow the surrogate dimension up to the user count.

use crate::trace::DECISION_THRESHOLD;
use eqimpact_certify::{CertifyTarget, ExtractionSpec};

/// The certification face of the credit scenario (registered next to
/// [`CreditTracer`](crate::CreditTracer) in the certify registry).
pub struct CreditCertify;

impl CertifyTarget for CreditCertify {
    fn name(&self) -> &'static str {
        "credit"
    }

    fn spec(&self) -> ExtractionSpec {
        ExtractionSpec {
            state_lo: 0.0,
            state_hi: 1.0,
            bins: 8,
            threshold: DECISION_THRESHOLD,
            model_fields: &["model.intercept", "model.coefficients"],
            sampled_trajectories: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TRACE_VARIANT;
    use crate::sim::{run_trial_sunk, CreditConfig, LenderKind};
    use eqimpact_certify::{extract, Verdict};
    use eqimpact_core::scenario::{Scale, TraceMeta};
    use eqimpact_trace::{TraceHeader, TraceStepSink};

    fn checkpointed_trace() -> Vec<u8> {
        let config = CreditConfig {
            users: 90,
            steps: 6,
            trials: 1,
            seed: 11,
            lender: LenderKind::Scorecard,
            ..CreditConfig::default()
        };
        let header = TraceHeader::from_meta(&TraceMeta {
            scenario: "credit".to_string(),
            variant: TRACE_VARIANT.to_string(),
            trial: 0,
            scale: Scale::Quick,
            seed: config.seed,
            shards: config.shards,
            delay: config.delay,
            policy: config.policy,
        })
        .with_checkpoints();
        let mut sink = TraceStepSink::new(Vec::new(), &header).expect("header writes");
        run_trial_sunk(&config, 0, &mut sink);
        sink.finish().expect("trace finishes")
    }

    #[test]
    fn recorded_credit_trace_extracts_and_renders_all_checks() {
        use eqimpact_certify::engine::{certificate_of, CertifyConfig};
        use eqimpact_stats::SimRng;

        let bytes = checkpointed_trace();
        let ex = extract(&CreditCertify.spec(), &mut bytes.as_slice()).expect("extracts");
        assert_eq!(ex.steps, 6);
        assert_eq!(ex.users, 90);
        assert!(ex.transition_count() > 0);
        assert!(!ex.checkpoints.is_empty(), "scorecard checkpoints present");
        let cert = certificate_of(
            "credit-000",
            &ex,
            &CertifyConfig::default(),
            &SimRng::new(42),
        );
        let names: Vec<&str> = cert.checks.iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            [
                "primitivity",
                "unique-ergodicity",
                "contraction",
                "lyapunov",
                "iss"
            ]
        );
        for check in &cert.checks {
            // Every check must commit to a rendered verdict, never panic.
            assert!(!check.detail.is_empty(), "check {}", check.name);
            let _ = check.verdict == Verdict::Certified;
        }
    }
}
