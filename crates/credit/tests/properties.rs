//! Property-based tests for the credit case study.

use eqimpact_credit::adr::AdrTracker;
use eqimpact_credit::model::{
    income_code, income_multiple_loan, repayment_probability, sample_repayment, state_fraction,
};
use eqimpact_credit::sim::{run_trial, CreditConfig, LenderKind};
use eqimpact_stats::SimRng;
use proptest::prelude::*;

proptest! {
    #[test]
    fn state_fraction_bounded_above_by_one(income in 0.5f64..500.0, loan in 0.0f64..2000.0) {
        // x = (z - 10 - r L)/z <= 1 - 10/z < 1 always.
        let x = state_fraction(income, loan);
        prop_assert!(x < 1.0);
    }

    #[test]
    fn state_fraction_monotone_in_income_for_proportional_loan(a in 11.0f64..400.0, b in 11.0f64..400.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let x_lo = state_fraction(lo, income_multiple_loan(lo));
        let x_hi = state_fraction(hi, income_multiple_loan(hi));
        prop_assert!(x_lo <= x_hi + 1e-12);
    }

    #[test]
    fn repayment_probability_monotone(a in -1.0f64..1.0, b in -1.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(repayment_probability(lo) <= repayment_probability(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&repayment_probability(a)));
    }

    #[test]
    fn no_loan_never_repays(income in 1.0f64..500.0, seed in 0u64..100) {
        let mut rng = SimRng::new(seed);
        prop_assert_eq!(sample_repayment(income, 0.0, &mut rng), 0.0);
    }

    #[test]
    fn income_code_is_binary(income in 0.5f64..500.0) {
        let c = income_code(income);
        prop_assert!(c == 0.0 || c == 1.0);
        prop_assert_eq!(c == 1.0, income >= 15.0);
    }

    #[test]
    fn adr_tracker_invariants(
        rounds in prop::collection::vec(
            prop::collection::vec((prop::bool::ANY, prop::bool::ANY), 4..=4),
            1..15,
        ),
    ) {
        // 4 users, arbitrary offer/repay patterns per round.
        let mut t = AdrTracker::new(4);
        let mut expected_offers = [0u64; 4];
        let mut expected_defaults = [0u64; 4];
        for round in &rounds {
            let loans: Vec<f64> = round.iter().map(|(o, _)| if *o { 100.0 } else { 0.0 }).collect();
            let repaid: Vec<f64> = round.iter().map(|(_, r)| if *r { 1.0 } else { 0.0 }).collect();
            for i in 0..4 {
                if round[i].0 {
                    expected_offers[i] += 1;
                    if !round[i].1 {
                        expected_defaults[i] += 1;
                    }
                }
            }
            t.record(&loans, &repaid);
        }
        for i in 0..4 {
            prop_assert_eq!(t.offers(i), expected_offers[i]);
            prop_assert_eq!(t.defaults(i), expected_defaults[i]);
            let adr = t.adr(i);
            prop_assert!((0.0..=1.0).contains(&adr));
            if expected_offers[i] == 0 {
                prop_assert_eq!(adr, 0.0);
            }
        }
        // Group ADR of all users is the mean of individual ADRs.
        let group = t.adr_group(&[0, 1, 2, 3]);
        let mean: f64 = (0..4).map(|i| t.adr(i)).sum::<f64>() / 4.0;
        prop_assert!((group - mean).abs() < 1e-12);
    }

    #[test]
    fn simulation_invariants_hold_for_any_seed(seed in 0u64..20) {
        let config = CreditConfig {
            users: 50,
            steps: 10,
            trials: 1,
            seed,
            lender: LenderKind::Scorecard,
            ..Default::default()
        };
        let outcome = run_trial(&config, 0);
        prop_assert_eq!(outcome.record.steps(), 10);
        prop_assert_eq!(outcome.races.len(), 50);
        for k in 0..10 {
            // Signals are loan amounts: non-negative, and repayment is
            // binary; ADR is a probability.
            for (&loan, &y) in outcome.record.signals(k).iter().zip(outcome.record.actions(k)) {
                prop_assert!(loan >= 0.0);
                prop_assert!(y == 0.0 || y == 1.0);
                if loan == 0.0 {
                    prop_assert_eq!(y, 0.0, "repayment without an offer");
                }
            }
            for &adr in outcome.record.filtered(k) {
                prop_assert!((0.0..=1.0).contains(&adr));
            }
        }
        // Warmup approves everyone.
        prop_assert!(outcome.record.signals(0).iter().all(|&l| l > 0.0));
        prop_assert!(outcome.record.signals(1).iter().all(|&l| l > 0.0));
    }
}
