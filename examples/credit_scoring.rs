//! The paper's Sec. VII credit-scoring case study, end to end: census
//! population, 3.5x-income mortgages, Gaussian conditional-independence
//! repayment, yearly scorecard retraining, five trials, 2002-2020.
//!
//! ```text
//! cargo run --release --example credit_scoring
//! ```

use eqimpact_census::Race;
use eqimpact_credit::report;
use eqimpact_credit::sim::{run_trials_protocol, CreditConfig, LenderKind};

fn main() {
    // The paper's protocol at a laptop-friendly N (use 1000 for the full
    // reproduction; see `cargo run --release -p eqimpact-bench --bin experiments`).
    let config = CreditConfig {
        users: 500,
        steps: 19,
        trials: 5,
        seed: 2002,
        lender: LenderKind::Scorecard,
        ..Default::default()
    };
    println!(
        "running {} trials x {} users x {} years...",
        config.trials, config.users, config.steps
    );
    let outcomes = run_trials_protocol(&config);

    // Table I: the learned scorecard of the first trial.
    let card = outcomes[0]
        .scorecard
        .as_ref()
        .expect("scorecard fitted after warmup");
    println!(
        "\nLearned scorecard (paper Table I shape):\n{}",
        card.to_table()
    );

    // Fig. 3: race-wise ADR, mean +/- std across trials.
    let summaries = report::fig3_race_adr(&outcomes);
    println!("Race-wise average default rates (final year, mean +/- std):");
    for s in &summaries {
        println!(
            "  {:<12} {:.4} +/- {:.4}",
            s.race,
            s.mean.last().unwrap(),
            s.std.last().unwrap()
        );
    }

    // The equal-impact reading: the race series end close to each other.
    let finals: Vec<f64> = summaries.iter().map(|s| *s.mean.last().unwrap()).collect();
    let spread = finals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - finals.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("\nInter-race final ADR spread: {spread:.4}");

    // Approval rates by race in the final year.
    println!("\nFinal-year approval rate by race (trial 0):");
    let outcome = &outcomes[0];
    let last = outcome.record.steps() - 1;
    for race in Race::ALL {
        let members = outcome.race_indices(race);
        let signals = outcome.record.signals(last);
        let approved = members.iter().filter(|&&i| signals[i] > 0.0).count();
        println!(
            "  {:<12} {:.1}%",
            race.label(),
            100.0 * approved as f64 / members.len().max(1) as f64
        );
    }

    assert!(spread < 0.1, "races should dwindle to a similar level");
    println!("\ncredit_scoring: OK");
}
