//! The regulator's view: audit one run of the credit closed loop with the
//! whole toolbox — classical single-pass fairness metrics (demographic
//! parity, equal opportunity, individual fairness), the paper's equal
//! treatment / equal impact, and ECOA-style counterfactual explanations
//! for denied applicants.
//!
//! ```text
//! cargo run --release --example regulation_audit
//! ```

use eqimpact_census::Race;
use eqimpact_core::fairness::{demographic_parity, equal_opportunity, individual_fairness};
use eqimpact_core::impact::{conditioned_equal_impact_report, group_limits};
use eqimpact_credit::sim::{run_trial, CreditConfig, LenderKind};
use eqimpact_ml::counterfactual::{minimal_counterfactual, FeatureBounds};

fn main() {
    let config = CreditConfig {
        users: 600,
        steps: 19,
        trials: 1,
        seed: 2002,
        lender: LenderKind::Scorecard,
        ..Default::default()
    };
    println!(
        "auditing one {}-user, 19-year scorecard loop...\n",
        config.users
    );
    let outcome = run_trial(&config, 0);
    let race_groups: Vec<Vec<usize>> = Race::ALL.iter().map(|&r| outcome.race_indices(r)).collect();

    // --- Single-pass group fairness (the Related Work notions) ---------
    let dp = demographic_parity(&outcome.record, &race_groups, 0.0);
    println!("Demographic parity (approval rate by race, pooled over years):");
    for (race, rate) in Race::ALL.iter().zip(&dp.group_rates) {
        println!(
            "  {:<12} {:.3} (n = {})",
            race.label(),
            rate.rate,
            rate.count
        );
    }
    println!(
        "  max gap {:.3}, disparate-impact ratio {:.3} (80% rule: >= 0.8)\n",
        dp.max_gap, dp.disparate_impact_ratio
    );

    let eo = equal_opportunity(&outcome.record, &race_groups, 0.0, 0.5);
    println!("Equal opportunity (approval among observed repayers):");
    for (race, rate) in Race::ALL.iter().zip(&eo.group_rates) {
        println!("  {:<12} {:.3}", race.label(), rate.rate);
    }
    println!("  max gap {:.3}\n", eo.max_gap);

    // --- Individual fairness on the ADR similarity metric --------------
    let indiv = individual_fairness(&outcome.record, |a, b| (a - b).abs().max(1e-3), 0.05);
    println!(
        "Individual fairness (Lipschitz audit on ADR similarity): worst ratio {:.1} over {} pairs\n",
        indiv.worst_lipschitz_ratio, indiv.pairs_audited
    );

    // --- The paper's long-run notion: equal impact by race -------------
    let impact = conditioned_equal_impact_report(&outcome.record, &race_groups, 0.3, 0.6);
    let groups = group_limits(&impact, &race_groups);
    println!("Equal impact (Def. 4): long-run repayment limits by race:");
    for (race, g) in Race::ALL.iter().zip(&groups) {
        println!("  {:<12} {:.3}", race.label(), g);
    }
    println!();

    // --- Counterfactual explanations for the final year's denials ------
    let card = outcome.scorecard.as_ref().expect("scorecard fitted");
    let last = outcome.record.steps() - 1;
    let signals = outcome.record.signals(last);
    let adrs = outcome.record.filtered(last.saturating_sub(1));
    let denied: Vec<usize> = (0..config.users).filter(|&i| signals[i] == 0.0).collect();
    println!(
        "Final year: {} denials. Counterfactuals (ECOA adverse-action guidance):",
        denied.len()
    );
    let bounds = vec![FeatureBounds::free(0.0, 1.0), FeatureBounds::free(0.0, 1.0)];
    let mut explained = 0;
    for &i in denied.iter().take(3) {
        // The lender scored [ADR(k-1), income_code(k)].
        let features = [adrs[i], 0.0];
        match minimal_counterfactual(card, &features, &bounds) {
            Ok(cf) => {
                explained += 1;
                println!(
                    "  user {i}: score {:.2} -> {:.2} via {}",
                    cf.original_score,
                    cf.counterfactual_score,
                    cf.changes
                        .iter()
                        .map(|c| format!("{} {:.2}->{:.2}", c.factor, c.from, c.to))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            Err(e) => println!("  user {i}: no counterfactual ({e})"),
        }
    }
    let _ = explained;

    println!("\nregulation_audit: OK");
}
