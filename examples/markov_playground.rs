//! Tour of the Markov-system machinery behind the paper's guarantees
//! (Sec. VI + Appendix): build systems, check the structural conditions,
//! estimate invariant measures, and watch coupling do its work.
//!
//! ```text
//! cargo run --release --example markov_playground
//! ```

use eqimpact_linalg::norm::MetricKind;
use eqimpact_linalg::Matrix;
use eqimpact_markov::contractivity::box_sampler;
use eqimpact_markov::coupling::synchronous_coupling;
use eqimpact_markov::ergodic;
use eqimpact_markov::ifs::{affine1d, Ifs};
use eqimpact_markov::invariant::{estimate_invariant_measure, FiniteChain};
use eqimpact_markov::operator::ParticleMeasure;
use eqimpact_stats::SimRng;

fn main() {
    // 1. A contractive, primitive IFS: the textbook uniquely ergodic case.
    let ifs = Ifs::builder(1)
        .map_const(affine1d(0.5, 0.0), 0.5)
        .map_const(affine1d(0.5, 0.5), 0.5)
        .build()
        .unwrap();
    let ms = ifs.as_markov_system().clone();

    let mut rng = SimRng::new(1);
    let report = ergodic::analyze(
        &ms,
        MetricKind::Euclidean,
        500,
        &mut rng,
        box_sampler(vec![0.0], vec![1.0]),
    );
    println!("Contractive binary IFS on [0,1]");
    println!("  irreducible: {}", report.irreducible);
    println!("  period:      {:?}", report.period);
    println!(
        "  contraction: {:.3} over {} pairs",
        report.contractivity.estimated_factor, report.contractivity.pairs_evaluated
    );
    println!("  verdict:     {:?}", report.verdict);
    assert!(report.supports_equal_impact());

    // 2. Its invariant measure (uniform on [0,1]) by particle iteration.
    let estimate = estimate_invariant_measure(
        &ms,
        &ParticleMeasure::dirac(&[0.99]),
        2_000,
        120,
        0.02,
        &mut rng,
    );
    let n = estimate.final_samples.len() as f64;
    let mean = estimate.final_samples.iter().sum::<f64>() / n;
    let var = estimate
        .final_samples
        .iter()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / n;
    println!("\nInvariant measure estimate (true: U[0,1], mean 0.5, var 1/12 = 0.0833)");
    println!(
        "  converged in {} iterations: mean {:.3}, var {:.4}",
        estimate.iterations, mean, var
    );

    // 3. Synchronous coupling: the distance halves every step.
    let trace = synchronous_coupling(
        &ms,
        &[0.0],
        &[1.0],
        30,
        MetricKind::Euclidean,
        1e-12,
        &mut rng,
    );
    println!("\nSynchronous coupling from x=0 and y=1:");
    for k in [0usize, 5, 10, 20] {
        println!("  step {k:>2}: distance {:.2e}", trace.distances[k]);
    }
    println!("  coupled at step {:?}", trace.coupled_at);

    // 4. Finite chains: primitive vs periodic.
    let primitive =
        FiniteChain::new(Matrix::from_rows(&[&[0.9, 0.1], &[0.4, 0.6]]).unwrap()).unwrap();
    let pi = primitive.stationary_distribution().unwrap();
    println!(
        "\nPrimitive 2-state chain: stationary = [{:.3}, {:.3}]",
        pi[0], pi[1]
    );
    let decay = primitive
        .tv_decay(&eqimpact_linalg::Vector::from_slice(&[1.0, 0.0]), 20)
        .unwrap();
    println!(
        "  TV to stationarity: start {:.3}, after 20 steps {:.2e}",
        decay[0], decay[20]
    );

    let periodic =
        FiniteChain::new(Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap()).unwrap();
    println!(
        "Periodic 2-cycle: irreducible = {}, aperiodic = {}",
        periodic.is_irreducible(),
        periodic.is_aperiodic()
    );
    let pdecay = periodic
        .tv_decay(&eqimpact_linalg::Vector::from_slice(&[1.0, 0.0]), 20)
        .unwrap();
    println!(
        "  TV plateau: after 20 steps still {:.3} (invariant measure exists but is not attractive)",
        pdecay[20]
    );

    println!("\nmarkov_playground: OK");
}
