//! The Sec. VI warning, live: integral control over a hysteretic ensemble
//! meets the population goal from every initial condition while individual
//! users' long-run outcomes depend entirely on where the system started —
//! equal impact fails. Proportional control over stochastic users keeps
//! the loop uniquely ergodic.
//!
//! ```text
//! cargo run --release --example ergodicity_loss
//! ```

use eqimpact_control::controller::{IController, PController};
use eqimpact_control::ensemble::{
    ergodicity_gap, identical_hysteresis_ensemble, logistic_ensemble, EnsembleInit,
};
use eqimpact_stats::SimRng;

fn main() {
    let n = 60;
    let steps = 6_000;
    let discard = 1_000;
    let mut rng = SimRng::new(7);

    // Integral controller + identical hysteretic relays: a continuum of
    // frozen equilibria.
    let relays = identical_hysteresis_ensemble(n, 0.7, 0.3);
    let integral = ergodicity_gap(
        &relays,
        |_| IController::new(0.01, 0.5),
        0.5,
        &[
            EnsembleInit::first_k_on(0.5, n, n / 2),
            EnsembleInit::last_k_on(0.5, n, n / 2),
            EnsembleInit::all_off(0.0, n),
        ],
        steps,
        discard,
        &mut rng,
    );
    println!("Integral control + hysteretic relays");
    println!(
        "  aggregate limits per initial condition: {:?}",
        integral
            .aggregate_limits
            .iter()
            .map(|x| format!("{x:.3}"))
            .collect::<Vec<_>>()
    );
    println!(
        "  max per-agent spread of long-run averages: {:.3}",
        integral.max_spread
    );
    println!("  -> the population goal is met, but WHICH users serve it is");
    println!("     decided by the initial condition: equal impact FAILS.\n");

    // Proportional controller + stochastic users: uniquely ergodic.
    let stochastic = logistic_ensemble(n, 0.0, 1.0, 0.15);
    let proportional = ergodicity_gap(
        &stochastic,
        |_| PController::new(1.0, 0.5),
        0.5,
        &[
            EnsembleInit::all_off(0.0, n),
            EnsembleInit::all_on(1.0, n),
            EnsembleInit::first_k_on(0.5, n, n / 2),
        ],
        steps,
        discard,
        &mut rng,
    );
    println!("Proportional control + stochastic users");
    println!(
        "  aggregate limits per initial condition: {:?}",
        proportional
            .aggregate_limits
            .iter()
            .map(|x| format!("{x:.3}"))
            .collect::<Vec<_>>()
    );
    println!(
        "  max per-agent spread of long-run averages: {:.3}",
        proportional.max_spread
    );
    println!("  -> limits are independent of initial conditions: equal impact HOLDS.");

    assert!(integral.max_spread > 0.9);
    assert!(proportional.max_spread < 0.1);
    println!("\nergodicity_loss: OK");
}
