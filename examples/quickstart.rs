//! Quickstart: build a closed loop from the three blocks of the paper's
//! Fig. 1, run it, and check equal treatment (Def. 1) and equal impact
//! (Def. 3).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eqimpact_core::closed_loop::{AiSystem, Feedback, LoopBuilder, MeanFilter, UserPopulation};
use eqimpact_core::features::FeatureMatrix;
use eqimpact_core::impact::equal_impact_report;
use eqimpact_core::recorder::RecordPolicy;
use eqimpact_core::treatment::equal_treatment_report;
use eqimpact_stats::SimRng;

/// An AI system that broadcasts one shared signal and nudges it toward a
/// target average response using the filtered feedback.
struct NudgingBroadcaster {
    level: f64,
    target: f64,
}

impl AiSystem for NudgingBroadcaster {
    fn signals_into(&mut self, _k: usize, visible: &FeatureMatrix, out: &mut Vec<f64>) {
        // Same information to every user: the heart of equal treatment.
        out.clear();
        out.resize(visible.row_count(), self.level);
    }

    fn retrain(&mut self, _k: usize, feedback: &Feedback) {
        // Proportional, stable adjustment — no integral action, so the
        // loop keeps its ergodic behaviour (Sec. VI of the paper).
        self.level += 0.5 * (self.target - feedback.aggregate);
        self.level = self.level.clamp(0.0, 1.0);
    }
}

/// Users who act with probability increasing in the broadcast signal.
struct StochasticUsers {
    n: usize,
}

impl UserPopulation for StochasticUsers {
    fn user_count(&self) -> usize {
        self.n
    }

    fn observe_into(&mut self, _k: usize, _rng: &mut SimRng, out: &mut FeatureMatrix) {
        out.reshape(self.n, 0);
    }

    fn respond_into(&mut self, _k: usize, signals: &[f64], rng: &mut SimRng, out: &mut Vec<f64>) {
        out.clear();
        out.extend(signals.iter().map(|&s| {
            let p = 0.1 + 0.8 * s.clamp(0.0, 1.0);
            if rng.bernoulli(p) {
                1.0
            } else {
                0.0
            }
        }));
    }
}

fn main() {
    // Statically dispatched, allocation-free loop via the builder; the
    // blocks above implement the in-place hooks.
    let mut runner = LoopBuilder::new(
        NudgingBroadcaster {
            level: 0.9,
            target: 0.45,
        },
        StochasticUsers { n: 200 },
    )
    .filter(MeanFilter::default())
    .delay(1) // the paper's feedback delay
    .record(RecordPolicy::Full)
    .build();

    let mut rng = SimRng::new(42);
    let record = runner.run(4_000, &mut rng);

    let treatment = equal_treatment_report(&record, 0.05);
    println!("Equal treatment (Def. 1)");
    println!("  same signal to all users: {}", treatment.same_signal);
    println!(
        "  response-level spread:    {:.4} (tolerance 0.05)",
        treatment.max_response_spread
    );
    println!("  satisfied: {}", treatment.satisfied);

    let impact = equal_impact_report(&record, 0.2, 0.05);
    println!("\nEqual impact (Def. 3)");
    println!(
        "  per-user Cesaro limits coincide: {} (max spread {:.4})",
        impact.all_coincide, impact.max_spread
    );
    println!(
        "  convergence rate across users:   {:.1}%",
        impact.convergence_rate * 100.0
    );
    println!("  satisfied: {}", impact.satisfied);

    let aggregate = record.mean_actions();
    let tail: f64 = aggregate[3_000..].iter().sum::<f64>() / 1_000.0;
    println!("\nAggregate response settled at {tail:.3} (target 0.45)");

    assert!(treatment.same_signal);
    assert!(impact.all_coincide);
    println!("\nquickstart: OK");
}
